"""Payload serialization helpers.

Sensor readings travel through the messaging and network substrates as byte
payloads.  The encoders here produce Sentilo-flavoured representations: a
compact CSV-like line format (what a constrained device would send), a JSON
format (what the platform API exposes), and a *column frame* format (one
self-describing payload carrying a whole batch of readings as parallel
columns — the high-throughput broker wire format, one frame per node-round
instead of one CSV payload per reading).  The encoded size is what the
traffic accounting measures, so encoders are deliberately simple and
deterministic.

Column frames come in two wire layouts, auto-detected on decode by their
magic prefix:

* **JSON frames** (``RBF1``) — the frame body is canonical JSON.  Simple,
  debuggable, and the compatibility format: any peer that spoke PR 2's
  frames keeps working unchanged.
* **Binary frames** (``RBB`` + version byte) — a packed binary layout:
  struct-packed little-endian numeric columns, one length-prefixed interned
  string table shared by the three string columns, adaptive 1/2/4/8-byte
  widths for the small-integer columns, and a CRC-32 over the body so
  truncation and bit flips are always detected (a corrupted frame decodes to
  a ``ValueError``, never to silently wrong data).  Roughly 3x smaller than
  the JSON layout for city telemetry and much cheaper to encode/decode —
  the hot columns are ``array``-backed, so packing is a buffer copy.
* **Binary frames v2** (``RBB`` + version byte 2) — the same packed body,
  compressed against a *deployment-scoped shared dictionary* built once
  from the city's interned vocabulary (sensor type names, categories,
  section and fog-node ids, tag-template JSON fragments).  Small
  per-section frames are dominated by exactly those strings, so priming
  zlib with them shrinks the wire well past what v1's self-contained
  compression can reach, and one primed ``compressobj`` is reused (via
  ``.copy()``) per frame instead of paying zlib setup each time.  The
  header carries the dictionary's CRC-32 so a decoder with a different
  dictionary rejects the frame instead of mis-inflating it, and an
  *extended* flag lets a frame carry the per-row tag/fog-node identity
  columns in dictionary-coded form (the IPC path uses this to drop its
  JSON sidecars).  v1 frames stay fully supported and are auto-detected
  on decode; a v1-only decoder rejects v2 frames by version byte.

The producing format is chosen per call (``encode_columns(...,
format=...)``), falling back to :data:`DEFAULT_FRAME_FORMAT`, which the
``REPRO_FRAME_FORMAT`` environment variable overrides — the negotiation
knob for fleets that still run JSON-only (or v1-only) decoders.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from array import array
from typing import Any, Dict, Iterable, List, Mapping, Optional

# ``_np`` (numpy or None) comes from typedcols so there is exactly one
# numpy import/fallback site in the package; tests monkeypatch this
# module's binding to force the pure-stdlib codec paths.
from repro.common.typedcols import _np, as_float_column, column_from_bytes, column_to_bytes

#: Leading marker of a JSON column frame.  Starts with a NUL byte, which can
#: never begin a CSV reading line, so receivers dispatch on the payload
#: prefix.
COLUMN_FRAME_MAGIC = b"\x00RBF1\n"

#: Leading marker of a packed binary column frame (NUL + "RBB"); the byte
#: after the magic is the layout version.
BINARY_FRAME_MAGIC = b"\x00RBB"

#: Original binary frame layout version.  Decoders reject other versions, so
#: the layout can evolve without ever misreading an old frame.
BINARY_FRAME_VERSION = 1

#: Shared-dictionary binary frame layout version (see the v2 section below).
BINARY_FRAME_VERSION_2 = 2

#: Supported frame format names.
FRAME_FORMATS = ("json", "binary", "binary-v2")

#: The format used when an encoder is not told one explicitly.  Binary is
#: the default (it is ~3x smaller and cheaper on both ends); deployments
#: negotiating with JSON-only peers set ``REPRO_FRAME_FORMAT=json``.
DEFAULT_FRAME_FORMAT = os.environ.get("REPRO_FRAME_FORMAT", "binary")
if DEFAULT_FRAME_FORMAT not in FRAME_FORMATS:  # pragma: no cover - env misuse
    raise ValueError(
        f"REPRO_FRAME_FORMAT must be one of {FRAME_FORMATS}, got {DEFAULT_FRAME_FORMAT!r}"
    )

#: The column names a frame must carry, all lists of equal length — also the
#: exact column order of the binary layout's body.
COLUMN_FRAME_FIELDS = (
    "sensor_ids",
    "sensor_types",
    "categories",
    "values",
    "timestamps",
    "sizes",
    "sequences",
)

_STRING_FIELDS = ("sensor_ids", "sensor_types", "categories")

#: Binary header after the magic: version(u8) + flags(u8) + row count(u32)
#: + stored body length(u32) + raw body length(u32) + CRC-32(u32), all
#: little-endian.  See the layout comment in the binary-frames section.
_HEADER = struct.Struct("<BBIIII")
_HEADER_CRC_PREFIX = struct.Struct("<BBIII")

#: Header flag bits.  v1 frames only ever use bit 0; the dictionary and
#: extended bits are v2-only (a v2 decoder still accepts plain bit-0
#: compression, so the two layouts share the fallback path).
_FLAG_COMPRESSED = 0x01
_FLAG_DICT_COMPRESSED = 0x02
_FLAG_EXTENDED = 0x04
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

#: Per-row value type tags on the mixed-values path.
_VAL_FLOAT = 0
_VAL_INT = 1
_VAL_STR = 2
_VAL_TRUE = 3
_VAL_FALSE = 4
_VAL_NONE = 5
_VAL_BIGINT = 6

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def encode_json(record: Mapping[str, Any]) -> bytes:
    """Encode a mapping as canonical (sorted-key, compact) JSON bytes."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    """Inverse of :func:`encode_json`."""
    return json.loads(payload.decode("utf-8"))


def encode_csv_line(values: Iterable[Any]) -> bytes:
    """Encode a flat sequence of values as a single CSV line (no quoting).

    Values containing commas or newlines are rejected to keep the format
    unambiguous; telemetry values never legitimately contain them.
    """
    parts = []
    for value in values:
        text = str(value)
        if "," in text or "\n" in text:
            raise ValueError(f"value not representable in CSV line format: {text!r}")
        parts.append(text)
    return (",".join(parts) + "\n").encode("utf-8")


def decode_csv_line(payload: bytes) -> list[str]:
    """Inverse of :func:`encode_csv_line` (values come back as strings)."""
    text = payload.decode("utf-8")
    if text.endswith("\n"):
        text = text[:-1]
    if not text:
        return []
    return text.split(",")


# --------------------------------------------------------------------------- #
# Column frames — shared validation and dispatch
# --------------------------------------------------------------------------- #
def _checked_lengths(columns: Mapping[str, List[Any]]) -> int:
    lengths = {name: len(columns[name]) for name in COLUMN_FRAME_FIELDS}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"column lengths differ: {lengths}")
    return next(iter(lengths.values()))


def encode_columns(columns: Mapping[str, List[Any]], format: Optional[str] = None) -> bytes:
    """Encode parallel reading columns as one deterministic wire frame.

    *columns* maps each :data:`COLUMN_FRAME_FIELDS` name to a sequence; all
    sequences must have the same length.  *format* selects the wire layout
    (``"json"`` or ``"binary"``); ``None`` uses :data:`DEFAULT_FRAME_FORMAT`.
    Values must be JSON-representable (numbers, strings, booleans, ``None``)
    in either layout, mirroring the CSV format's restrictions.
    """
    if format is None:
        format = DEFAULT_FRAME_FORMAT
    if format == "binary":
        return encode_columns_binary(columns)
    if format == "binary-v2":
        return encode_columns_binary_v2(columns)
    if format != "json":
        raise ValueError(f"unknown frame format: {format!r} (expected one of {FRAME_FORMATS})")
    _checked_lengths(columns)
    record = {name: list(columns[name]) for name in COLUMN_FRAME_FIELDS}
    return COLUMN_FRAME_MAGIC + encode_json(record)


def decode_columns(payload: bytes) -> Dict[str, List[Any]]:
    """Inverse of :func:`encode_columns`; auto-detects the frame layout.

    JSON frames decode to plain lists; binary frames decode the numeric
    columns straight into typed arrays (``array('d')`` timestamps,
    ``array('q')`` sizes).  Both validate the frame shape and raise
    ``ValueError`` on any malformed input — a frame either decodes whole or
    not at all.
    """
    if payload.startswith(BINARY_FRAME_MAGIC):
        # Dispatch on the version byte after the magic: v2 first (it is the
        # newer layout), then the v1 decoder, which owns the "unsupported
        # version" error for anything else.
        if len(payload) > len(BINARY_FRAME_MAGIC) and payload[len(BINARY_FRAME_MAGIC)] == BINARY_FRAME_VERSION_2:
            return decode_columns_binary_v2(payload)
        return decode_columns_binary(payload)
    if not payload.startswith(COLUMN_FRAME_MAGIC):
        raise ValueError("payload is not a column frame (missing magic prefix)")
    record = decode_json(payload[len(COLUMN_FRAME_MAGIC):])
    if not isinstance(record, dict):
        raise ValueError("column frame body is not a JSON object")
    missing = [name for name in COLUMN_FRAME_FIELDS if name not in record]
    if missing:
        raise ValueError(f"column frame is missing fields: {missing}")
    for name in COLUMN_FRAME_FIELDS:
        if not isinstance(record[name], list):
            raise ValueError(f"column frame field {name!r} is not a list")
    lengths = {len(record[name]) for name in COLUMN_FRAME_FIELDS}
    if len(lengths) > 1:
        raise ValueError("column frame has diverging column lengths")
    return record


def is_column_frame(payload: bytes) -> bool:
    """Whether *payload* is a column frame (vs a CSV/JSON reading payload)."""
    return payload.startswith(COLUMN_FRAME_MAGIC) or payload.startswith(BINARY_FRAME_MAGIC)


def frame_format(payload: bytes) -> Optional[str]:
    """``"json"`` / ``"binary"`` / ``"binary-v2"`` for a column frame payload, else ``None``."""
    if payload.startswith(BINARY_FRAME_MAGIC):
        if len(payload) > len(BINARY_FRAME_MAGIC) and payload[len(BINARY_FRAME_MAGIC)] == BINARY_FRAME_VERSION_2:
            return "binary-v2"
        return "binary"
    if payload.startswith(COLUMN_FRAME_MAGIC):
        return "json"
    return None


def frame_carries_identity(payload: bytes) -> bool:
    """Whether *payload* is an extended v2 frame (tags/fog ids travel inside).

    A cheap header peek used by the IPC decoder to decide whether to expect
    trailing JSON sidecars (v1 batches) or nothing (extended v2 batches).
    """
    header = len(BINARY_FRAME_MAGIC)
    return (
        payload.startswith(BINARY_FRAME_MAGIC)
        and len(payload) > header + 1
        and payload[header] == BINARY_FRAME_VERSION_2
        and bool(payload[header + 1] & _FLAG_EXTENDED)
    )


# --------------------------------------------------------------------------- #
# Binary column frames
#
# Layout (all integers little-endian):
#
#   magic       4 bytes   b"\x00RBB"
#   version     u8        BINARY_FRAME_VERSION
#   flags       u8        bit 0: the stored body is zlib-compressed
#   rows        u32       number of rows n
#   stored_len  u32       length of the stored (possibly compressed) body
#   raw_len     u32       length of the body after decompression (equal to
#                         stored_len when flags bit 0 is clear)
#   crc         u32       CRC-32 (zlib) of the header fields above (from
#                         version through raw_len) + the stored body
#   body (after optional decompression):
#     string table      u32 entry count, then per entry a length-prefixed
#                       UTF-8 string (u8 length, with 0xFF escaping to a
#                       u32 for longer strings); one table shared by the
#                       three string columns
#     sensor_ids        n indices into the table (width below)
#     sensor_types      n indices
#     categories        n indices
#     values            u8 layout tag: 0 = an f64 column (all values are
#                       floats, the telemetry fast path — see below);
#                       1 = n tagged rows (u8 type + payload: f64 / i64 /
#                       u32-length-prefixed UTF-8 / true / false / null /
#                       u32-length-prefixed decimal bigint)
#     timestamps        one f64 column
#     sizes             one small-integer column
#     sequences         one small-integer column
#
# An **f64 column** is a u8 tag + payload: tag 0 = n packed f64; tag 2 =
# dictionary-coded — u32 entry count, the distinct 8-byte values, then n
# narrow indices.  Distinctness is by *bit pattern* (so ``-0.0`` vs ``0.0``
# and NaN payloads survive exactly), and the encoder picks whichever layout
# is smaller — sensor rounds repeat few distinct timestamps, so the
# dictionary usually collapses that column to ~1 byte per row.
#
# A **small-integer column** is a u8 tag + payload: tags 1/2/4/8 = packed
# unsigned elements of that byte width (the narrowest that fits); tag 9 =
# packed signed 8-byte elements (any negative value present); tag 10 =
# dictionary-coded like the f64 columns but with i64 entries.  Again the
# encoder picks the smallest.
#
# Index width is always derived from the table/dictionary entry count
# (u8 ≤ 256 entries, u16 ≤ 65536, u32 beyond), so it needs no tag.
#
# The encoder zlib-compresses the body and keeps the compressed form only
# when it is smaller (small per-section frames are dominated by the string
# table, whose entries share long prefixes, so compression routinely wins
# there; ``raw_len`` bounds the decompression, so a crafted frame cannot
# balloon memory).  Every decoder-visible inconsistency — bad magic,
# unknown version/flags, wrong stored/raw length, CRC mismatch,
# out-of-range table index, trailing bytes — raises ``ValueError``; the
# CRC covers the header fields and the stored body, so truncation and bit
# flips are detectable even when they land in packed numeric data that
# would otherwise "decode".
# --------------------------------------------------------------------------- #
_WIDTH_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}
_SIGNED_TAG = 9
_DICT_TAG = 10
_PLAIN_F64_TAG = 0
_DICT_F64_TAG = 2

#: Columns shorter than this never try dictionary coding.  Small frames
#: don't win (the u32 entry count + table overhead, plus the body is
#: zlib-compressed anyway, which picks up the repetition); the dictionary
#: pays off on city-scale frames where it also speeds compression up by
#: shrinking its input.
_DICT_MIN_ROWS = 256

#: zlib level for frame bodies: level 1 compresses the string table's
#: shared prefixes nearly as well as the default level at a fraction of the
#: encode cost (the packed numeric columns are mostly incompressible).
_ZLIB_LEVEL = 1

_INDEX_DTYPES = {"B": "u1", "H": "<u2", "I": "<u4"}


def _index_typecode(table_size: int) -> str:
    if table_size <= 1 << 8:
        return "B"
    if table_size <= 1 << 16:
        return "H"
    return "I"


def _pack_string_column(values: List[Any], table: Dict[str, int]) -> List[int]:
    """Intern *values* into *table*, returning their indices.

    Key validation happens once per distinct entry (in the caller), not once
    per row — the interning listcomp is the per-row hot loop.
    """
    intern = table.setdefault
    try:
        return [intern(value, len(table)) for value in values]
    except TypeError as exc:
        raise ValueError(f"binary column frames require string ids/types/categories: {exc}") from exc


def _pack_indices(code: str, indices) -> bytes:
    if _np is not None and not isinstance(indices, (list, array)):
        return indices.astype(_INDEX_DTYPES[code]).tobytes()
    return column_to_bytes(array(code, indices))


def _pack_f64_column(column: array) -> bytes:
    """One f64 column: plain packed doubles, or a bit-exact dictionary."""
    n = len(column)
    plain = column_to_bytes(column)
    if n >= _DICT_MIN_ROWS:
        if _np is not None:
            # Dictionary distinctness runs on the raw 64-bit patterns, so
            # -0.0/0.0 and NaN payloads round-trip exactly.
            bits = _np.frombuffer(column, dtype=_np.int64)
            entries, inverse = _np.unique(bits, return_inverse=True)
            count = len(entries)
            code = _index_typecode(count)
            dict_size = _U32.size + 8 * count + struct.calcsize(code) * n
            if dict_size < len(plain):
                return (
                    bytes([_DICT_F64_TAG])
                    + _U32.pack(count)
                    + entries.astype("<i8", copy=False).tobytes()
                    + _pack_indices(code, inverse)
                )
        else:
            entry_for: Dict[bytes, int] = {}
            intern = entry_for.setdefault
            pack = _F64.pack
            indices = [intern(pack(value), len(entry_for)) for value in column]
            count = len(entry_for)
            code = _index_typecode(count)
            dict_size = _U32.size + 8 * count + struct.calcsize(code) * n
            if dict_size < len(plain):
                return (
                    bytes([_DICT_F64_TAG])
                    + _U32.pack(count)
                    + b"".join(entry_for)
                    + _pack_indices(code, indices)
                )
    return bytes([_PLAIN_F64_TAG]) + plain


def _read_block(view: memoryview, offset: int, size: int, what: str) -> tuple:
    if offset + size > len(view):
        raise ValueError(f"binary column frame truncated in {what} column")
    return bytes(view[offset:offset + size]), offset + size


def _unpack_dict_indices(
    view: memoryview, offset: int, n: int, what: str
) -> tuple:
    """Read a dictionary header: (entry count, index column, new offset)."""
    if offset + _U32.size > len(view):
        raise ValueError(f"binary column frame truncated in {what} column")
    (count,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    code = _index_typecode(count)
    entries, offset = _read_block(view, offset, 8 * count, what)
    index_bytes, offset = _read_block(view, offset, struct.calcsize(code) * n, what)
    indices = column_from_bytes(code, index_bytes)
    if n and (not count or max(indices) >= count):
        raise ValueError(f"binary column frame has out-of-range {what} dictionary index")
    return count, entries, indices, offset


def _unpack_f64_column(view: memoryview, offset: int, n: int, what: str) -> tuple:
    if offset >= len(view):
        raise ValueError(f"binary column frame truncated in {what} column")
    tag = view[offset]
    offset += 1
    if tag == _PLAIN_F64_TAG:
        raw, offset = _read_block(view, offset, 8 * n, what)
        return column_from_bytes("d", raw), offset
    if tag != _DICT_F64_TAG:
        raise ValueError(f"binary column frame has unknown {what} layout tag {tag}")
    count, entries, indices, offset = _unpack_dict_indices(view, offset, n, what)
    if _np is not None:
        table = _np.frombuffer(entries, dtype="<f8")
        gathered = table[_np.asarray(indices)].astype("<f8", copy=False)
        return column_from_bytes("d", gathered.tobytes()), offset
    table_column = column_from_bytes("d", entries)
    return array("d", (table_column[i] for i in indices)), offset


def _pack_small_ints(values) -> bytes:
    """One small-integer column: narrowest plain width, or a dictionary."""
    n = len(values)
    if not n:
        return bytes([1])
    if type(values) is array and values.typecode == "q":
        column = values
    else:
        try:
            column = array("q", values)
        except TypeError as exc:
            raise ValueError(f"binary column frames require integer sizes/sequences: {exc}") from exc
        except OverflowError as exc:
            raise ValueError("integer column value does not fit in 64 bits") from exc
    low, high = min(column), max(column)
    if low < 0:
        code, width = "q", 8
        plain_tag = _SIGNED_TAG
    else:
        if high <= 0xFF:
            width = 1
        elif high <= 0xFFFF:
            width = 2
        elif high <= 0xFFFFFFFF:
            width = 4
        else:
            width = 8
        code = _WIDTH_CODES[width]
        plain_tag = width
    if n >= _DICT_MIN_ROWS:
        if _np is not None:
            entries, inverse = _np.unique(_np.frombuffer(column, dtype=_np.int64), return_inverse=True)
            count = len(entries)
            icode = _index_typecode(count)
            dict_size = _U32.size + 8 * count + struct.calcsize(icode) * n
            if dict_size < width * n:
                return (
                    bytes([_DICT_TAG])
                    + _U32.pack(count)
                    + entries.astype("<i8", copy=False).tobytes()
                    + _pack_indices(icode, inverse)
                )
        else:
            entry_for: Dict[int, int] = {}
            intern = entry_for.setdefault
            indices = [intern(value, len(entry_for)) for value in column]
            count = len(entry_for)
            icode = _index_typecode(count)
            dict_size = _U32.size + 8 * count + struct.calcsize(icode) * n
            if dict_size < width * n:
                return (
                    bytes([_DICT_TAG])
                    + _U32.pack(count)
                    + column_to_bytes(array("q", entry_for))
                    + _pack_indices(icode, indices)
                )
    return bytes([plain_tag]) + column_to_bytes(array(code, column))


def _unpack_small_ints(view: memoryview, offset: int, n: int, what: str) -> tuple:
    if offset >= len(view):
        raise ValueError(f"binary column frame truncated in {what} column")
    tag = view[offset]
    offset += 1
    if tag == _DICT_TAG:
        count, entries, indices, offset = _unpack_dict_indices(view, offset, n, what)
        table_column = column_from_bytes("q", entries)
        return array("q", (table_column[i] for i in indices)), offset
    if tag == _SIGNED_TAG:
        code = "q"
    else:
        code = _WIDTH_CODES.get(tag)
        if code is None:
            raise ValueError(f"binary column frame has unknown {what} width tag {tag}")
    raw, offset = _read_block(view, offset, struct.calcsize(code) * n, what)
    column = column_from_bytes(code, raw)
    if code == "q":
        return column, offset
    try:
        # Widen to the canonical signed-64 column type.
        return array("q", column), offset
    except OverflowError as exc:
        raise ValueError("binary column frame integer does not fit in 64 bits") from exc


def _encode_binary_body(columns: Mapping[str, List[Any]], n: int) -> bytearray:
    """The packed seven-column body shared by the v1 and v2 frame layouts."""
    table: Dict[str, int] = {}
    id_ix = _pack_string_column(columns["sensor_ids"], table)
    type_ix = _pack_string_column(columns["sensor_types"], table)
    cat_ix = _pack_string_column(columns["categories"], table)
    try:
        texts = [text.encode("utf-8") for text in table]  # insertion order == index order
    except AttributeError as exc:
        raise ValueError(
            "binary column frames require string ids/types/categories"
        ) from exc

    body = bytearray()
    body += _U32.pack(len(table))
    body += _pack_small_ints([len(raw) for raw in texts])
    body += b"".join(texts)
    index_code = _index_typecode(len(table))
    body += column_to_bytes(array(index_code, id_ix))
    body += column_to_bytes(array(index_code, type_ix))
    body += column_to_bytes(array(index_code, cat_ix))

    values = columns["values"]
    all_float = True
    for value in values:
        if type(value) is not float:
            all_float = False
            break
    if all_float:
        body.append(0)
        body += _pack_f64_column(array("d", values))
    else:
        body.append(1)
        append = body.append
        for value in values:
            if type(value) is bool:
                append(_VAL_TRUE if value else _VAL_FALSE)
            elif isinstance(value, float):
                append(_VAL_FLOAT)
                body += _F64.pack(value)
            elif isinstance(value, int):
                if _I64_MIN <= value <= _I64_MAX:
                    append(_VAL_INT)
                    body += _I64.pack(value)
                else:
                    raw = str(value).encode("ascii")
                    append(_VAL_BIGINT)
                    body += _U32.pack(len(raw))
                    body += raw
            elif isinstance(value, str):
                raw = value.encode("utf-8")
                append(_VAL_STR)
                body += _U32.pack(len(raw))
                body += raw
            elif value is None:
                append(_VAL_NONE)
            else:
                raise ValueError(
                    f"value not representable in a column frame: {type(value).__name__}"
                )

    try:
        timestamps = as_float_column(columns["timestamps"])
    except (TypeError, OverflowError) as exc:
        raise ValueError(f"binary column frames require numeric timestamps: {exc}") from exc
    body += _pack_f64_column(timestamps)
    body += _pack_small_ints(columns["sizes"])
    body += _pack_small_ints(columns["sequences"])
    return body


def encode_columns_binary(columns: Mapping[str, List[Any]]) -> bytes:
    """Encode parallel reading columns as one packed binary frame."""
    n = _checked_lengths(columns)
    raw = bytes(_encode_binary_body(columns, n))
    stored = raw
    flags = 0
    compressed = zlib.compress(raw, _ZLIB_LEVEL)
    if len(compressed) < len(raw):
        stored = compressed
        flags = _FLAG_COMPRESSED
    prefix = _HEADER_CRC_PREFIX.pack(BINARY_FRAME_VERSION, flags, n, len(stored), len(raw))
    crc = zlib.crc32(stored, zlib.crc32(prefix))
    return BINARY_FRAME_MAGIC + prefix + _U32.pack(crc) + stored


def decode_columns_binary(payload: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_columns_binary`; validates exhaustively.

    Returns the column mapping with typed-array numeric columns.  Raises
    ``ValueError`` for any structural problem — unknown version, length or
    CRC mismatch (truncation / bit flips), out-of-range indices, trailing
    bytes — so a corrupt frame can never partially decode.
    """
    if not payload.startswith(BINARY_FRAME_MAGIC):
        raise ValueError("payload is not a binary column frame (missing magic prefix)")
    header_end = len(BINARY_FRAME_MAGIC) + _HEADER.size
    if len(payload) < header_end:
        raise ValueError("binary column frame truncated in header")
    version, flags, n, stored_len, raw_len, crc = _HEADER.unpack_from(
        payload, len(BINARY_FRAME_MAGIC)
    )
    if version != BINARY_FRAME_VERSION:
        raise ValueError(f"unsupported binary column frame version: {version}")
    if flags & ~_FLAG_COMPRESSED:
        raise ValueError(f"binary column frame has unknown flags: {flags:#x}")
    if len(payload) != header_end + stored_len:
        raise ValueError("binary column frame body length mismatch")
    stored = memoryview(payload)[header_end:]
    prefix = payload[len(BINARY_FRAME_MAGIC):header_end - _U32.size]
    if zlib.crc32(stored, zlib.crc32(prefix)) != crc:
        raise ValueError("binary column frame checksum mismatch")
    if flags & _FLAG_COMPRESSED:
        body = memoryview(_inflate_body(stored, raw_len, zlib.decompressobj()))
        body_len = raw_len
    else:
        if raw_len != stored_len:
            raise ValueError("binary column frame raw length mismatch")
        body = stored
        body_len = stored_len

    record, offset = _decode_binary_body(body, body_len, n)
    if offset != body_len:
        raise ValueError("binary column frame has trailing bytes")
    return record


def _inflate_body(stored, raw_len: int, decompressor) -> bytes:
    try:
        # raw_len bounds the decompression so a crafted frame cannot
        # balloon memory past its declared body size.
        raw = decompressor.decompress(bytes(stored), raw_len)
    except zlib.error as exc:
        raise ValueError(f"binary column frame body does not decompress: {exc}") from exc
    if (
        decompressor.unconsumed_tail
        or decompressor.unused_data
        or not decompressor.eof
        or len(raw) != raw_len
    ):
        raise ValueError("binary column frame decompressed length mismatch")
    return raw


def _decode_binary_body(body: memoryview, body_len: int, n: int) -> tuple:
    """Decode the shared seven-column body; returns (record, end offset)."""
    offset = 0
    if body_len < _U32.size:
        raise ValueError("binary column frame truncated in string table")
    (table_size,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    lengths, offset = _unpack_small_ints(body, offset, table_size, "string table")
    if table_size and min(lengths) < 0:
        raise ValueError("binary column frame has a negative string length")
    blob, offset = _read_block(body, offset, sum(lengths), "string table")
    table: List[str] = []
    table_append = table.append
    position = 0
    try:
        for length in lengths:
            table_append(str(blob[position:position + length], "utf-8"))
            position += length
    except UnicodeDecodeError as exc:
        raise ValueError("binary column frame string table is not valid UTF-8") from exc

    index_code = _index_typecode(table_size)
    index_size = struct.calcsize(index_code) * n
    string_columns: Dict[str, List[str]] = {}
    for name in _STRING_FIELDS:
        if offset + index_size > body_len:
            raise ValueError(f"binary column frame truncated in {name} column")
        indices = column_from_bytes(index_code, bytes(body[offset:offset + index_size]))
        offset += index_size
        try:
            string_columns[name] = [table[i] for i in indices]
        except IndexError as exc:
            raise ValueError(f"binary column frame has out-of-range {name} index") from exc

    if offset >= body_len:
        raise ValueError("binary column frame truncated in values column")
    values: List[Any]
    values_tag = body[offset]
    offset += 1
    if values_tag == 0:
        values_column, offset = _unpack_f64_column(body, offset, n, "values")
        values = values_column.tolist()
    elif values_tag == 1:
        values = []
        values_append = values.append
        for _ in range(n):
            if offset >= body_len:
                raise ValueError("binary column frame truncated in values column")
            tag = body[offset]
            offset += 1
            if tag == _VAL_FLOAT:
                if offset + 8 > body_len:
                    raise ValueError("binary column frame truncated in values column")
                values_append(_F64.unpack_from(body, offset)[0])
                offset += 8
            elif tag == _VAL_INT:
                if offset + 8 > body_len:
                    raise ValueError("binary column frame truncated in values column")
                values_append(_I64.unpack_from(body, offset)[0])
                offset += 8
            elif tag in (_VAL_STR, _VAL_BIGINT):
                if offset + _U32.size > body_len:
                    raise ValueError("binary column frame truncated in values column")
                (length,) = _U32.unpack_from(body, offset)
                offset += _U32.size
                if offset + length > body_len:
                    raise ValueError("binary column frame truncated in values column")
                try:
                    text = str(body[offset:offset + length], "utf-8")
                except UnicodeDecodeError as exc:
                    raise ValueError("binary column frame value is not valid UTF-8") from exc
                offset += length
                if tag == _VAL_BIGINT:
                    try:
                        values_append(int(text))
                    except ValueError as exc:
                        raise ValueError("binary column frame bigint is not decimal") from exc
                else:
                    values_append(text)
            elif tag == _VAL_TRUE:
                values_append(True)
            elif tag == _VAL_FALSE:
                values_append(False)
            elif tag == _VAL_NONE:
                values_append(None)
            else:
                raise ValueError(f"binary column frame has unknown value tag {tag}")
    else:
        raise ValueError("binary column frame has unknown values layout tag")

    timestamps, offset = _unpack_f64_column(body, offset, n, "timestamps")
    sizes, offset = _unpack_small_ints(body, offset, n, "sizes")
    sequences, offset = _unpack_small_ints(body, offset, n, "sequences")
    return {
        "sensor_ids": string_columns["sensor_ids"],
        "sensor_types": string_columns["sensor_types"],
        "categories": string_columns["categories"],
        "values": values,
        "timestamps": timestamps,
        "sizes": sizes,
        "sequences": sequences,
    }, offset


# --------------------------------------------------------------------------- #
# Binary column frames v2 — shared-dictionary compression + identity columns
#
# Layout (all integers little-endian):
#
#   magic       4 bytes   b"\x00RBB"
#   version     u8        BINARY_FRAME_VERSION_2
#   flags       u8        bit 0: body zlib-compressed, no dictionary
#                         bit 1: body zlib-compressed with the deployment
#                                dictionary (exclusive with bit 0)
#                         bit 2: extended body (tag + fog-node columns)
#   rows        u32
#   stored_len  u32       length of the stored (possibly compressed) body
#   raw_len     u32       length of the body after decompression
#   dict_crc    u32       CRC-32 of the deployment dictionary when bit 1 is
#                         set, 0 otherwise — a decoder holding a different
#                         dictionary rejects the frame instead of
#                         mis-inflating it
#   crc         u32       CRC-32 of the header fields above (version through
#                         dict_crc) + the stored body
#   body:       the v1 seven-column body (same byte layout), then iff bit 2:
#     tags      u32 entry count; per entry a u32-length-prefixed canonical
#               JSON document (an object or null); then n indices into the
#               table (width from the entry count).  Entries are interned by
#               *identity*, so rows sharing one tag dict share one table
#               entry and decode back to one shared dict object.
#     fog ids   same shape; entries are JSON strings or null.
#
# The shared dictionary is deployment-scoped and deterministic: it is built
# once per process from the city's interned vocabulary (section topics and
# ids, fog-node ids, sensor type names, categories, tag-template JSON
# fragments), so every encoder and decoder of one deployment derives the
# same bytes — there is no dictionary exchange on the wire, only the CRC
# handshake in the header.  Small per-section frames are dominated by
# exactly that vocabulary, which v1's self-contained compression cannot
# exploit (each small frame carries too little internal repetition); the
# dictionary gives the compressor those strings up front.  One primed
# ``compressobj``/``decompressobj`` pair is built with the dictionary and
# ``.copy()``-ed per frame, so the per-frame cost is a cheap state clone
# instead of a fresh zlib setup + dictionary priming.
# --------------------------------------------------------------------------- #
_HEADER_V2 = struct.Struct("<BBIIIII")
_HEADER_V2_CRC_PREFIX = struct.Struct("<BBIIII")

#: zlib level for v2 frame bodies.  Unlike v1 (level 1), v2 compresses
#: against the shared dictionary where higher levels keep finding matches;
#: the default level buys ~10-15% more shrink on small frames for an
#: encode cost that the per-stream compressor reuse already paid back.
_V2_ZLIB_LEVEL = 6

#: zlib level for the *fast* v2 path (local IPC pipes): the dictionary does
#: nearly all the work there — level 1 gives up ~3% of the shrink for a
#: ~40% cheaper deflate, the right trade when the bytes never leave the
#: machine and the encoder shares a core with the decoder.
_V2_ZLIB_FAST_LEVEL = 1

_v2_dictionary: Optional[bytes] = None
_v2_dictionary_crc: int = 0
_v2_compressor = None
_v2_fast_compressor = None
_v2_decompressor = None


def deployment_dictionary() -> bytes:
    """The deterministic deployment-scoped zlib dictionary for v2 frames.

    Built once per process from the city's interned string vocabulary and
    cached; every process of one deployment derives byte-identical
    dictionaries, so only the CRC travels in the frame header.
    """
    global _v2_dictionary, _v2_dictionary_crc, _v2_compressor
    global _v2_fast_compressor, _v2_decompressor
    if _v2_dictionary is not None:
        return _v2_dictionary
    # Lazy imports: the city/catalog layers import this module, so their
    # vocabulary is pulled in at first use rather than at import time.
    from repro.city.barcelona import BARCELONA, CLOUD_NODE_ID, fog1_node_id, fog2_node_id
    from repro.sensors.catalog import BARCELONA_CATALOG

    # zlib rewards material near the *end* of the dictionary (closest match
    # offsets), so parts run from least to most frequent wire material.
    parts: List[str] = []
    for district in BARCELONA.districts:
        for section in district.sections:
            parts.append(f"city/barcelona/{section.section_id}/frame")
    parts.append(CLOUD_NODE_ID)
    for district in BARCELONA.districts:
        parts.append(fog2_node_id(district.district_id))
        for section in district.sections:
            parts.append(fog1_node_id(section.section_id))
    # Tag-template fragments in the canonical (sorted-key, compact) JSON
    # shape the acquisition layer emits for every reading's tag dict.
    parts.extend(
        (
            '{"category":"',
            '","city":"barcelona","collected_at":',
            ',"fog_node":"fog1/district-',
            '","quality_score":0.9',
        )
    )
    # Sensor ids are "<type name>-<5 digits>": the name plus leading zeros
    # covers most of every string-table entry.  Type names and categories
    # go last — they are the most repeated strings on the wire.
    for name in BARCELONA_CATALOG.type_names:
        parts.append(f"{name}-000")
    parts.extend(str(category) for category in BARCELONA_CATALOG.categories)
    blob = "".join(parts).encode("utf-8")
    if len(blob) > 32 * 1024:  # pragma: no cover - vocabulary growth guard
        blob = blob[-32 * 1024:]  # zlib dictionaries cap at 32 KiB; keep the tail
    _v2_dictionary = blob
    _v2_dictionary_crc = zlib.crc32(blob)
    _v2_compressor = zlib.compressobj(_V2_ZLIB_LEVEL, zlib.DEFLATED, zdict=blob)
    _v2_fast_compressor = zlib.compressobj(_V2_ZLIB_FAST_LEVEL, zlib.DEFLATED, zdict=blob)
    _v2_decompressor = zlib.decompressobj(zdict=blob)
    return blob


def deployment_dictionary_crc() -> int:
    """CRC-32 of :func:`deployment_dictionary` (the wire handshake value)."""
    deployment_dictionary()
    return _v2_dictionary_crc


def _v2_codec(fast: bool = False) -> tuple:
    """(dictionary crc, primed compressor, primed decompressor), built once."""
    deployment_dictionary()
    compressor = _v2_fast_compressor if fast else _v2_compressor
    return _v2_dictionary_crc, compressor, _v2_decompressor


def _intern_column(values, key) -> tuple:
    """Intern *values* into (table, indices) using *key* for equality."""
    table: List[Any] = []
    indices: List[int] = []
    index_for: Dict[Any, int] = {}
    table_append = table.append
    indices_append = indices.append
    for value in values:
        marker = key(value)
        index = index_for.get(marker)
        if index is None:
            index = index_for[marker] = len(table)
            table_append(value)
        indices_append(index)
    return table, indices


def _append_json_table(body: bytearray, values, key, what: str, expect: type) -> None:
    """Append one dictionary-coded JSON column (table + narrow indices)."""
    table, indices = _intern_column(values, key)
    body += _U32.pack(len(table))
    for entry in table:
        if entry is not None and not isinstance(entry, expect):
            raise ValueError(
                f"binary column frame {what} entry must be {expect.__name__} or None, "
                f"got {type(entry).__name__}"
            )
        raw = json.dumps(entry, sort_keys=True, separators=(",", ":")).encode("utf-8")
        body += _U32.pack(len(raw))
        body += raw
    body += column_to_bytes(array(_index_typecode(len(table) or 1), indices))


def _decode_json_table(
    body: memoryview, body_len: int, offset: int, n: int, what: str, expect: type
) -> tuple:
    """Inverse of :func:`_append_json_table`; validates per table entry."""
    if offset + _U32.size > body_len:
        raise ValueError(f"binary column frame truncated in {what} column")
    (count,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    table: List[Any] = []
    for _ in range(count):
        if offset + _U32.size > body_len:
            raise ValueError(f"binary column frame truncated in {what} column")
        (length,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        raw, offset = _read_block(body, offset, length, what)
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"binary column frame {what} entry is not valid JSON") from exc
        if entry is not None and not isinstance(entry, expect):
            raise ValueError(
                f"binary column frame {what} entry must be {expect.__name__} or None"
            )
        table.append(entry)
    code = _index_typecode(count or 1)
    raw, offset = _read_block(body, offset, struct.calcsize(code) * n, what)
    indices = column_from_bytes(code, raw)
    try:
        # Gathering through the table preserves entry identity: all rows
        # that shared one tag dict at encode time share one object again.
        column = [table[i] for i in indices]
    except IndexError as exc:
        raise ValueError(f"binary column frame has out-of-range {what} index") from exc
    return column, offset


def encode_columns_binary_v2(
    columns: Mapping[str, List[Any]],
    tags: Optional[List[Any]] = None,
    fog_node_ids: Optional[List[Any]] = None,
    *,
    fast: bool = False,
) -> bytes:
    """Encode columns as one v2 shared-dictionary binary frame.

    Passing *tags* and *fog_node_ids* (both or neither) produces an
    *extended* frame carrying the per-row identity columns inside the frame
    body — the IPC path uses this instead of its v1 JSON sidecars.
    *fast* trades ~3% of the shrink for a much cheaper deflate (the IPC
    path sets it: local pipes are CPU-bound, not bandwidth-bound); the
    frame layout and decoder are identical either way.
    """
    n = _checked_lengths(columns)
    body = _encode_binary_body(columns, n)
    flags = 0
    if tags is not None or fog_node_ids is not None:
        if tags is None or fog_node_ids is None:
            raise ValueError("extended v2 frames need both tags and fog_node_ids")
        if len(tags) != n or len(fog_node_ids) != n:
            raise ValueError("extended v2 frame identity columns have the wrong length")
        flags |= _FLAG_EXTENDED
        _append_json_table(body, tags, key=id, what="tags", expect=dict)
        _append_json_table(body, fog_node_ids, key=lambda value: value, what="fog ids", expect=str)
    raw = bytes(body)
    dict_crc, compressor, _ = _v2_codec(fast=fast)
    deflater = compressor.copy()
    compressed = deflater.compress(raw) + deflater.flush()
    stored = raw
    stored_dict_crc = 0
    if len(compressed) < len(raw):
        stored = compressed
        flags |= _FLAG_DICT_COMPRESSED
        stored_dict_crc = dict_crc
    prefix = _HEADER_V2_CRC_PREFIX.pack(
        BINARY_FRAME_VERSION_2, flags, n, len(stored), len(raw), stored_dict_crc
    )
    crc = zlib.crc32(stored, zlib.crc32(prefix))
    return BINARY_FRAME_MAGIC + prefix + _U32.pack(crc) + stored


def decode_columns_binary_v2(payload: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_columns_binary_v2`; validates exhaustively.

    Extended frames decode with two extra keys, ``"tags"`` and
    ``"fog_node_ids"``, validated per table entry (dict-or-None and
    str-or-None respectively).  Raises ``ValueError`` for any structural
    problem, including a dictionary CRC that does not match the local
    deployment dictionary.
    """
    if not payload.startswith(BINARY_FRAME_MAGIC):
        raise ValueError("payload is not a binary column frame (missing magic prefix)")
    header_end = len(BINARY_FRAME_MAGIC) + _HEADER_V2.size
    if len(payload) < header_end:
        raise ValueError("binary column frame truncated in header")
    version, flags, n, stored_len, raw_len, dict_crc, crc = _HEADER_V2.unpack_from(
        payload, len(BINARY_FRAME_MAGIC)
    )
    if version != BINARY_FRAME_VERSION_2:
        raise ValueError(f"unsupported binary column frame version: {version}")
    if flags & ~(_FLAG_COMPRESSED | _FLAG_DICT_COMPRESSED | _FLAG_EXTENDED):
        raise ValueError(f"binary column frame has unknown flags: {flags:#x}")
    if (flags & _FLAG_COMPRESSED) and (flags & _FLAG_DICT_COMPRESSED):
        raise ValueError("binary column frame declares two compression modes")
    if len(payload) != header_end + stored_len:
        raise ValueError("binary column frame body length mismatch")
    stored = memoryview(payload)[header_end:]
    prefix = payload[len(BINARY_FRAME_MAGIC):header_end - _U32.size]
    if zlib.crc32(stored, zlib.crc32(prefix)) != crc:
        raise ValueError("binary column frame checksum mismatch")
    if flags & _FLAG_DICT_COMPRESSED:
        local_crc, _, inflater = _v2_codec()
        if dict_crc != local_crc:
            raise ValueError(
                "binary column frame dictionary mismatch: frame dictionary "
                f"CRC {dict_crc:#010x}, local {local_crc:#010x}"
            )
        body = memoryview(_inflate_body(stored, raw_len, inflater.copy()))
        body_len = raw_len
    else:
        if dict_crc:
            raise ValueError(
                "binary column frame declares a dictionary CRC without the dictionary flag"
            )
        if flags & _FLAG_COMPRESSED:
            body = memoryview(_inflate_body(stored, raw_len, zlib.decompressobj()))
            body_len = raw_len
        else:
            if raw_len != stored_len:
                raise ValueError("binary column frame raw length mismatch")
            body = stored
            body_len = stored_len

    record, offset = _decode_binary_body(body, body_len, n)
    if flags & _FLAG_EXTENDED:
        record["tags"], offset = _decode_json_table(body, body_len, offset, n, "tags", dict)
        record["fog_node_ids"], offset = _decode_json_table(
            body, body_len, offset, n, "fog ids", str
        )
    if offset != body_len:
        raise ValueError("binary column frame has trailing bytes")
    return record


# --------------------------------------------------------------------------- #
# Stream framing — length-prefixed frames over byte pipes
#
# Column frames are self-delimiting only as whole payloads; a byte *stream*
# (a ``multiprocessing`` pipe between an ingest worker and its supervisor, a
# socket, a spool file) needs record boundaries.  Each stream record is::
#
#   magic     4 bytes   b"\x00RBS"
#   length    u32       payload length (bounded by the reader's max)
#   crc       u32       CRC-32 (zlib) of magic + length + payload
#   payload   length bytes
#
# The CRC covers the length field, so a corrupted prefix cannot silently
# re-frame the stream.  Readers distinguish two failure classes:
#
# * a record whose header parsed but whose CRC failed leaves the reader at
#   the next record boundary — the frame is lost, the stream is usable
#   (:attr:`StreamFrameError.resynced` is true);
# * structural damage (bad magic, truncated header/payload, oversized
#   length) makes the boundary itself untrustworthy — the reader raises
#   with ``resynced=False`` and the caller must abandon the stream.
#
# Either way a damaged record is rejected whole: stream framing can lose a
# frame, never deliver part of one.
# --------------------------------------------------------------------------- #

#: Leading marker of one stream record.
STREAM_FRAME_MAGIC = b"\x00RBS"

#: Upper bound a reader accepts for one record's payload; a corrupted (or
#: hostile) length field must not make the reader try to buffer gigabytes.
MAX_STREAM_FRAME_BYTES = 1 << 30

_STREAM_PREFIX = struct.Struct("<4sI")  # magic + payload length


class StreamFrameError(ValueError):
    """A corrupt record in a length-prefixed frame stream.

    ``resynced`` is true when the reader consumed exactly the span the
    stream's length field declared, leaving it at what the stream *claims*
    is the next record boundary.  That claim holds when the damage was in
    the payload; if the length field itself was corrupted (the CRC covers
    it, so the mismatch is still detected) the position is arbitrary and
    subsequent reads will fail structurally.  Callers that keep reading
    after a resynced error must therefore still treat the stream as
    unreliable: count every loss, and abandon the source wholesale on any
    follow-up error (the sharded supervisor goes further and re-runs the
    worker on *any* drop).  ``resynced`` false means the position is known
    to be untrustworthy — stop immediately.
    """

    def __init__(self, message: str, resynced: bool = False) -> None:
        super().__init__(message)
        self.resynced = resynced


def encode_stream_frame(payload: bytes) -> bytes:
    """One length-prefixed, CRC-protected stream record around *payload*."""
    prefix = _STREAM_PREFIX.pack(STREAM_FRAME_MAGIC, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return prefix + _U32.pack(crc) + payload


class FrameStreamWriter:
    """Writes length-prefixed frames through a ``write(bytes)`` callable.

    The callable may perform partial writes (``os.write`` on a pipe); the
    writer loops until the whole record is out.  It must return the number
    of bytes written (every ``io`` writer and ``os.write`` do); a ``None``
    return is rejected rather than guessed at — a non-blocking raw writer
    returns ``None`` for "wrote nothing", and treating that as success
    would silently truncate a record mid-wire.
    """

    def __init__(self, write) -> None:
        self._write = write

    def write_frame(self, payload: bytes) -> int:
        """Frame *payload* and write it; returns the bytes put on the wire."""
        data = encode_stream_frame(bytes(payload))
        view = memoryview(data)
        remaining = len(data)
        while remaining:
            written = self._write(view[-remaining:])
            if written is None or written <= 0:
                raise StreamFrameError("stream writer made no progress", resynced=False)
            remaining -= written
        return len(data)


class FrameStreamReader:
    """Reads length-prefixed frames through a ``read(n) -> bytes`` callable.

    ``read`` may return fewer than *n* bytes (pipe semantics); empty bytes
    mean end of stream.  :meth:`read_frame` returns one payload, ``None`` on
    a clean end of stream (EOF exactly at a record boundary), and raises
    :class:`StreamFrameError` for anything corrupt.
    """

    def __init__(self, read, max_frame_bytes: int = MAX_STREAM_FRAME_BYTES) -> None:
        self._read = read
        self._max_frame_bytes = max_frame_bytes

    def _read_exact(self, size: int, what: str, allow_eof: bool = False):
        chunks = []
        remaining = size
        while remaining:
            chunk = self._read(remaining)
            if not chunk:
                if allow_eof and remaining == size:
                    return None
                raise StreamFrameError(f"frame stream truncated in {what}", resynced=False)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def read_frame(self):
        prefix = self._read_exact(_STREAM_PREFIX.size, "record header", allow_eof=True)
        if prefix is None:
            return None
        magic, length = _STREAM_PREFIX.unpack(prefix)
        if magic != STREAM_FRAME_MAGIC:
            raise StreamFrameError("frame stream record has a bad magic prefix", resynced=False)
        if length > self._max_frame_bytes:
            raise StreamFrameError(
                f"frame stream record length {length} exceeds the "
                f"{self._max_frame_bytes}-byte bound", resynced=False,
            )
        (crc,) = _U32.unpack(self._read_exact(_U32.size, "record checksum"))
        payload = b"" if not length else self._read_exact(length, "record payload")
        if zlib.crc32(payload, zlib.crc32(prefix)) != crc:
            # The declared span was consumed whole, so the reader sits at
            # what the stream claims is the next boundary — a real boundary
            # only if the length field was undamaged (see StreamFrameError).
            raise StreamFrameError("frame stream record checksum mismatch", resynced=True)
        return payload


def pad_to_size(payload: bytes, target_size: int, fill: bytes = b" ") -> bytes:
    """Pad *payload* with *fill* bytes up to *target_size*.

    Used by the synthetic reading generator to make every message of a sensor
    type occupy exactly the wire size the paper's Table I specifies,
    regardless of how many digits the particular measurement happened to
    have.  Payloads already longer than the target are returned unchanged.
    """
    if target_size < 0:
        raise ValueError("target_size must be non-negative")
    if len(fill) != 1:
        raise ValueError("fill must be a single byte")
    if len(payload) >= target_size:
        return payload
    return payload + fill * (target_size - len(payload))
