"""Command-line interface for the reproduction.

Usage (after installation)::

    python -m repro table1              # print Table I
    python -m repro fig6                # print the Barcelona deployment summary
    python -m repro fig7 [--category energy]
    python -m repro compare [--no-compression]
    python -m repro simulate [--hours 6] [--scale 0.00005]

Every subcommand prints the same text the benchmark harness writes under
``benchmarks/results/``; the ``simulate`` subcommand runs the event-level
pipeline on a sampled sensor population and reports the measured per-layer
traffic next to the analytic estimate.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.core.architecture import F2CDataManagement
from repro.core.baseline import CentralizedCloudDataManagement
from repro.core.comparison import analytic_comparison, measured_comparison
from repro.core.estimation import TrafficEstimator
from repro.core.movement import MovementPolicy
from repro.sensors.catalog import BARCELONA_CATALOG, SensorCategory
from repro.sensors.generator import ReadingGenerator
from repro.sensors.readings import ReadingBatch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS 2017 F2C smart-city data-management evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print Table I (redundant data aggregation model)")
    subparsers.add_parser("fig6", help="print the Fig. 6 deployment summary for Barcelona")

    fig7 = subparsers.add_parser("fig7", help="print the Fig. 7 reduction series")
    fig7.add_argument(
        "--category",
        choices=[c.value for c in SensorCategory],
        default=None,
        help="restrict to one category (default: all five panels)",
    )

    compare = subparsers.add_parser("compare", help="print the F2C vs centralized comparison")
    compare.add_argument(
        "--no-compression",
        action="store_true",
        help="report redundancy elimination only (skip the zip factor)",
    )

    simulate = subparsers.add_parser(
        "simulate", help="run the event-level pipeline on a sampled sensor population"
    )
    simulate.add_argument("--hours", type=int, default=6, help="simulated hours (default 6)")
    simulate.add_argument(
        "--scale", type=float, default=0.00005, help="sensor-population scale factor (default 5e-5)"
    )
    simulate.add_argument("--seed", type=int, default=11, help="random seed (default 11)")
    return parser


def _cmd_table1() -> str:
    return TrafficEstimator(BARCELONA_CATALOG).format_table1()


def _cmd_fig6() -> str:
    summary = F2CDataManagement().summary()
    lines = ["F2C deployment for Barcelona (Fig. 6):"]
    lines.extend(f"  {key}: {value}" for key, value in summary.items())
    return "\n".join(lines)


def _cmd_fig7(category: Optional[str]) -> str:
    estimator = TrafficEstimator(BARCELONA_CATALOG)
    categories = (
        [SensorCategory(category)] if category is not None else list(BARCELONA_CATALOG.categories)
    )
    return "\n".join(estimator.format_fig7(c) for c in categories)


def _cmd_compare(apply_compression: bool) -> str:
    return analytic_comparison(BARCELONA_CATALOG, apply_compression=apply_compression).format()


def _cmd_simulate(hours: int, scale: float, seed: int) -> str:
    if hours <= 0:
        raise SystemExit("--hours must be positive")
    if scale <= 0:
        raise SystemExit("--scale must be positive")
    catalog = BARCELONA_CATALOG.scaled(scale)
    generator = ReadingGenerator(catalog, devices_per_type=3, seed=seed)
    f2c = F2CDataManagement(
        catalog=catalog,
        movement_policy=MovementPolicy(fog1_to_fog2_interval_s=3_600.0, fog2_to_cloud_interval_s=3_600.0),
    )
    centralized = CentralizedCloudDataManagement(catalog=catalog)
    sections = [s.section_id for s in f2c.city.sections]

    total_readings = 0
    for hour in range(hours):
        start = hour * 3_600.0
        batch = ReadingBatch()
        for transaction in generator.transactions(count=4, start=start, interval=900.0):
            batch.extend(transaction)
        total_readings += len(batch)
        f2c.ingest_readings(batch, now=start, default_section=sections[hour % len(sections)])
        centralized.ingest_readings(batch, now=start)
        f2c.synchronise(now=start + 3_599.0)

    comparison = measured_comparison(
        workload=f"{hours} simulated hours, {total_readings:,} readings (scale {scale})",
        f2c_traffic_report=f2c.traffic_report(),
        centralized_traffic_report=centralized.traffic_report(),
    )
    return comparison.format()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        output = _cmd_table1()
    elif args.command == "fig6":
        output = _cmd_fig6()
    elif args.command == "fig7":
        output = _cmd_fig7(args.category)
    elif args.command == "compare":
        output = _cmd_compare(apply_compression=not args.no_compression)
    elif args.command == "simulate":
        output = _cmd_simulate(args.hours, args.scale, args.seed)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
