"""Command-line interface for the reproduction.

Usage (after installation)::

    python -m repro table1              # print Table I
    python -m repro fig6                # print the Barcelona deployment summary
    python -m repro fig7 [--category energy]
    python -m repro compare [--no-compression]
    python -m repro simulate [--hours 6] [--scale 0.00005]
    python -m repro ingest [--transport frames-binary] [--workers 4] [--json]
    python -m repro serve [--virtual-clock] [--clients 4] [--inbox-limit 64] [--json]
    python -m repro query --since 0 --until 900 [--category energy] [--json]
    python -m repro scenarios [--select corrupt] [--processes] [--json]

The reproduction subcommands print the same text the benchmark harness
writes under ``benchmarks/results/``; ``simulate`` runs the event-level
pipeline on a sampled sensor population and reports the measured per-layer
traffic next to the analytic estimate.  ``ingest`` and ``query`` drive the
:mod:`repro.api` client: ``ingest`` runs a seeded workload through any
transport (including the multi-process sharded runtime) and reports the
deployment summary + health counters; ``serve`` runs it as a long-running
service (paced rounds + concurrent querier threads, deterministic under
``--virtual-clock``); ``query`` runs the same workload and then answers a
nearest-tier hierarchical query with per-tier attribution.  ``scenarios``
runs the seeded chaos matrix (:mod:`repro.scenarios`) and audits every
run against the invariant registry, exiting non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import math
from typing import Optional, Sequence

from repro.api import PipelineConfig, connect, run_workload
from repro.api.config import TRANSPORTS
from repro.core.architecture import F2CDataManagement
from repro.core.baseline import CentralizedCloudDataManagement
from repro.core.comparison import analytic_comparison, measured_comparison
from repro.core.estimation import TrafficEstimator
from repro.sensors.catalog import BARCELONA_CATALOG, SensorCategory
from repro.sensors.generator import ReadingGenerator
from repro.sensors.readings import ReadingBatch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS 2017 F2C smart-city data-management evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print Table I (redundant data aggregation model)")
    subparsers.add_parser("fig6", help="print the Fig. 6 deployment summary for Barcelona")

    fig7 = subparsers.add_parser("fig7", help="print the Fig. 7 reduction series")
    fig7.add_argument(
        "--category",
        choices=[c.value for c in SensorCategory],
        default=None,
        help="restrict to one category (default: all five panels)",
    )

    compare = subparsers.add_parser("compare", help="print the F2C vs centralized comparison")
    compare.add_argument(
        "--no-compression",
        action="store_true",
        help="report redundancy elimination only (skip the zip factor)",
    )

    simulate = subparsers.add_parser(
        "simulate", help="run the event-level pipeline on a sampled sensor population"
    )
    simulate.add_argument("--hours", type=int, default=6, help="simulated hours (default 6)")
    simulate.add_argument(
        "--scale", type=float, default=0.00005, help="sensor-population scale factor (default 5e-5)"
    )
    simulate.add_argument("--seed", type=int, default=11, help="random seed (default 11)")

    def add_workload_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--transport",
            choices=TRANSPORTS,
            default="direct",
            help="ingest transport (default: direct)",
        )
        subparser.add_argument(
            "--workers", type=int, default=1, help="worker processes (sharded transport only)"
        )
        subparser.add_argument(
            "--inline-workers",
            action="store_true",
            help="sharded: run workers in-process over in-memory channels",
        )
        subparser.add_argument(
            "--devices-per-type", type=int, default=5, help="devices per sensor type (default 5)"
        )
        subparser.add_argument(
            "--rounds", type=int, default=4, help="15-minute measurement rounds (default 4)"
        )
        subparser.add_argument("--seed", type=int, default=2024, help="workload seed (default 2024)")
        subparser.add_argument(
            "--durable-dir",
            default=None,
            metavar="DIR",
            help="write fsync'd segment logs under DIR (crash-recoverable via repro.api.recover)",
        )
        subparser.add_argument("--json", action="store_true", help="machine-readable output")

    ingest = subparsers.add_parser(
        "ingest", help="run a seeded workload through the repro.api ingest pipeline"
    )
    add_workload_arguments(ingest)

    serve = subparsers.add_parser(
        "serve", help="run a seeded workload as a service with concurrent queriers"
    )
    add_workload_arguments(serve)
    serve.add_argument(
        "--virtual-clock",
        action="store_true",
        help="pace rounds on a seeded virtual clock (instant, deterministic digest)",
    )
    serve.add_argument(
        "--tick-interval",
        type=float,
        default=0.0,
        metavar="S",
        help="seconds between ingest rounds (default 0: as fast as possible)",
    )
    serve.add_argument(
        "--inbox-limit",
        type=int,
        default=None,
        metavar="N",
        help="bound broker inboxes at N messages (overflow sheds and is counted)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent querier threads run against the live service (default 4)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="seconds to wait for the workload to finish (default 120)",
    )

    scenarios = subparsers.add_parser(
        "scenarios",
        help="run the chaos scenario matrix and audit every invariant",
    )
    scenarios.add_argument(
        "--select",
        default=None,
        metavar="SUBSTR",
        help="run only scenarios whose name contains SUBSTR",
    )
    scenarios.add_argument(
        "--processes",
        action="store_true",
        help="run sharded scenarios over real forked workers instead of in-process",
    )
    scenarios.add_argument(
        "--update-digests",
        action="store_true",
        help="rewrite the committed per-scenario digest table from this run",
    )
    scenarios.add_argument("--json", action="store_true", help="machine-readable output")

    query = subparsers.add_parser(
        "query", help="run a seeded workload, then answer a nearest-tier query"
    )
    add_workload_arguments(query)
    query.add_argument("--since", type=float, default=float("-inf"), help="window start (inclusive)")
    query.add_argument("--until", type=float, default=float("inf"), help="window end (exclusive)")
    query.add_argument("--sensor", default=None, help="restrict to one sensor id")
    query.add_argument("--section", default=None, help="restrict to one city section")
    query.add_argument(
        "--category",
        choices=[c.value for c in SensorCategory],
        default=None,
        help="restrict to one Sentilo category",
    )
    query.add_argument(
        "--limit", type=int, default=5, help="sample readings shown in text output (default 5)"
    )
    query.add_argument(
        "--summarize",
        action="store_true",
        help="answer with constant-size per-category sketches instead of rows",
    )
    return parser


def _cmd_table1() -> str:
    return TrafficEstimator(BARCELONA_CATALOG).format_table1()


def _cmd_fig6() -> str:
    summary = F2CDataManagement().summary()
    lines = ["F2C deployment for Barcelona (Fig. 6):"]
    lines.extend(f"  {key}: {value}" for key, value in summary.items())
    return "\n".join(lines)


def _cmd_fig7(category: Optional[str]) -> str:
    estimator = TrafficEstimator(BARCELONA_CATALOG)
    categories = (
        [SensorCategory(category)] if category is not None else list(BARCELONA_CATALOG.categories)
    )
    return "\n".join(estimator.format_fig7(c) for c in categories)


def _cmd_compare(apply_compression: bool) -> str:
    return analytic_comparison(BARCELONA_CATALOG, apply_compression=apply_compression).format()


def _cmd_simulate(hours: int, scale: float, seed: int) -> str:
    if hours <= 0:
        raise SystemExit("--hours must be positive")
    if scale <= 0:
        raise SystemExit("--scale must be positive")
    catalog = BARCELONA_CATALOG.scaled(scale)
    generator = ReadingGenerator(catalog, devices_per_type=3, seed=seed)
    client = connect(
        catalog=catalog,
        config=PipelineConfig(fog1_sync_interval_s=3_600.0, fog2_sync_interval_s=3_600.0),
    )
    centralized = CentralizedCloudDataManagement(catalog=catalog)
    sections = [s.section_id for s in client.system.city.sections]

    total_readings = 0
    for hour in range(hours):
        start = hour * 3_600.0
        batch = ReadingBatch()
        for transaction in generator.transactions(count=4, start=start, interval=900.0):
            batch.extend(transaction)
        total_readings += len(batch)
        client.ingest(batch, now=start, default_section=sections[hour % len(sections)])
        centralized.ingest_readings(batch, now=start)
        client.synchronise(now=start + 3_599.0)

    comparison = measured_comparison(
        workload=f"{hours} simulated hours, {total_readings:,} readings (scale {scale})",
        f2c_traffic_report=client.traffic_report(),
        centralized_traffic_report=centralized.traffic_report(),
    )
    return comparison.format()


def _workload_and_config_from_args(args, **config_overrides):
    """Build the seeded workload + config the ingest/query/serve subcommands share."""
    from repro.runtime.shards import ShardedWorkload

    if args.devices_per_type <= 0:
        raise SystemExit("--devices-per-type must be positive")
    if args.rounds <= 0:
        raise SystemExit("--rounds must be positive")
    if args.workers <= 0:
        raise SystemExit("--workers must be positive")
    transport = args.transport
    if args.workers > 1 and transport != "sharded":
        raise SystemExit("--workers requires --transport sharded")
    if args.inline_workers and transport != "sharded":
        raise SystemExit("--inline-workers requires --transport sharded")
    workload = ShardedWorkload(
        devices_per_type=args.devices_per_type,
        seed=args.seed,
        rounds=args.rounds,
        sync_plan=((args.rounds, args.rounds * 900.0),),
    )
    config = PipelineConfig(
        transport=transport,
        workers=args.workers,
        inline_workers=args.inline_workers,
        durable_dir=args.durable_dir,
        **config_overrides,
    )
    return workload, config


def _run_workload_from_args(args) -> "object":
    """Build and run the seeded workload the ingest/query subcommands share."""
    workload, config = _workload_and_config_from_args(args)
    return run_workload(workload, config)


def _cmd_ingest(args) -> str:
    client = _run_workload_from_args(args)
    summary = client.summary()
    traffic = client.traffic_report()
    if args.json:
        return json.dumps(
            {"transport": args.transport, "summary": summary, "traffic": traffic},
            indent=2,
            sort_keys=True,
        )
    health = summary.pop("health")
    lines = [f"Ingested the seeded workload via transport {args.transport!r}:"]
    lines.extend(f"  {key}: {value}" for key, value in summary.items())
    lines.append("traffic (bytes received per layer):")
    lines.extend(f"  {layer}: {volume:,}" for layer, volume in traffic.items())
    lines.append("health:")
    lines.extend(
        f"  {key}: {value}" for key, value in health.items() if key != "queries"
    )
    return "\n".join(lines)


def _cmd_summarize(args, client) -> str:
    if args.sensor is not None:
        raise SystemExit("--summarize answers per category, not per sensor")
    summary = client.summarize(
        since=args.since,
        until=args.until,
        section_id=args.section,
        category=args.category,
    )
    if args.json:
        def finite_or_none(value: float):
            return value if math.isfinite(value) else None

        return json.dumps(
            {
                "window": {
                    "since": finite_or_none(args.since),
                    "until": finite_or_none(args.until),
                },
                "filters": {"section_id": args.section, "category": args.category},
                "rows": summary.rows,
                "rows_by_tier": summary.rows_by_tier,
                "summary_bytes": summary.size_bytes(),
                "categories": {
                    category: {"distinct_sensors": summary.distinct_sensors(category)}
                    for category in summary.categories()
                },
            },
            indent=2,
            sort_keys=True,
        )
    lines = [
        f"~{summary.rows} readings in [{args.since}, {args.until}) "
        f"summarized in {summary.size_bytes():,} sketch bytes "
        f"(served from {', '.join(summary.tiers()) or 'no tier (empty)'}):"
    ]
    lines.extend(
        f"  {category}: ~{summary.distinct_sensors(category):.0f} distinct sensors"
        for category in summary.categories()
    )
    return "\n".join(lines)


def _cmd_serve(args) -> str:
    import threading
    import time

    from repro.api import serve
    from repro.common.clock import VirtualClock

    if args.clients < 0:
        raise SystemExit("--clients must be non-negative")
    if args.tick_interval < 0:
        raise SystemExit("--tick-interval must be non-negative")
    if args.drain_timeout <= 0:
        raise SystemExit("--drain-timeout must be positive")
    workload, config = _workload_and_config_from_args(
        args,
        serve_tick_interval_s=args.tick_interval,
        serve_inbox_limit=args.inbox_limit,
        serve_drain_timeout_s=args.drain_timeout,
    )
    clock = VirtualClock(seed=args.seed) if args.virtual_clock else None
    handle = serve(workload, config, clock=clock)
    queries_per_client = [0] * args.clients

    def querier(slot: int) -> None:
        while handle.running:
            handle.submit_query()
            queries_per_client[slot] += 1
            time.sleep(0.001)

    threads = [
        threading.Thread(target=querier, args=(slot,), daemon=True)
        for slot in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    drained = handle.drain()
    for thread in threads:
        thread.join()
    stats = handle.shutdown()
    digest = handle.cloud_digest()
    health = handle.health()
    if args.json:
        return json.dumps(
            {
                "transport": args.transport,
                "virtual_clock": args.virtual_clock,
                "drained": drained,
                "cloud_sha256": digest,
                "serve": stats,
                "client_queries": queries_per_client,
                "broker": health["broker"],
                "dropped_payloads": health["dropped_payloads"],
            },
            indent=2,
            sort_keys=True,
        )
    clock_kind = "virtual clock" if args.virtual_clock else "wall clock"
    lines = [
        f"Served the seeded workload via transport {args.transport!r} ({clock_kind}):",
        f"  drained: {drained}",
        f"  cloud sha256: {digest}",
    ]
    lines.extend(f"  {key}: {value}" for key, value in stats.items())
    lines.append(
        f"  client queries: {sum(queries_per_client)} across {args.clients} threads"
    )
    broker = health["broker"]
    if broker["attached"]:
        lines.append(
            f"  broker: published={broker['published']} delivered={broker['delivered']} "
            f"shed={broker['shed_messages']} inbox_limit={broker['inbox_limit']}"
        )
    lines.append(f"  dropped payloads: {health['dropped_payloads']}")
    return "\n".join(lines)


def _cmd_query(args) -> str:
    client = _run_workload_from_args(args)
    if args.summarize:
        return _cmd_summarize(args, client)
    result = client.query(
        since=args.since,
        until=args.until,
        sensor_id=args.sensor,
        section_id=args.section,
        category=args.category,
    )
    if args.json:
        # Unbounded window ends become null: json.dumps would otherwise emit
        # the non-standard Infinity literal that strict parsers reject.
        def finite_or_none(value: float):
            return value if math.isfinite(value) else None

        return json.dumps(
            {
                "window": {
                    "since": finite_or_none(args.since),
                    "until": finite_or_none(args.until),
                },
                "filters": {
                    "sensor_id": args.sensor,
                    "section_id": args.section,
                    "category": args.category,
                },
                "rows": len(result),
                "rows_by_tier": result.rows_by_tier,
                "sources": [
                    {
                        "node_id": source.node_id,
                        "tier": source.tier,
                        "section_id": source.section_id,
                        "rows": source.rows,
                    }
                    for source in result.sources
                ],
            },
            indent=2,
            sort_keys=True,
        )
    lines = [
        f"{len(result)} readings in [{args.since}, {args.until}) "
        f"served from {', '.join(result.tiers()) or 'no tier (empty)'}:"
    ]
    lines.extend(
        f"  {tier}: {rows:,} rows" for tier, rows in sorted(result.rows_by_tier.items())
    )
    shown = 0
    for reading in result.columns.iter_readings():
        if shown >= max(0, args.limit):
            break
        lines.append(
            f"  [{reading.timestamp:10.1f}] {reading.sensor_id} "
            f"{reading.category}/{reading.sensor_type} = {reading.value}"
        )
        shown += 1
    remaining = len(result) - shown
    if remaining > 0:
        lines.append(f"  ... {remaining:,} more")
    return "\n".join(lines)


def _cmd_scenarios(args) -> tuple:
    """Run the chaos matrix; exit non-zero when any invariant fails."""
    from repro.scenarios import run_matrix

    report = run_matrix(
        select=args.select,
        processes=args.processes,
        update_digests=args.update_digests,
    )
    if args.json:
        output = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    else:
        output = report.render()
    return output, 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        output = _cmd_table1()
    elif args.command == "fig6":
        output = _cmd_fig6()
    elif args.command == "fig7":
        output = _cmd_fig7(args.category)
    elif args.command == "compare":
        output = _cmd_compare(apply_compression=not args.no_compression)
    elif args.command == "simulate":
        output = _cmd_simulate(args.hours, args.scale, args.seed)
    elif args.command == "ingest":
        output = _cmd_ingest(args)
    elif args.command == "serve":
        output = _cmd_serve(args)
    elif args.command == "query":
        output = _cmd_query(args)
    elif args.command == "scenarios":
        output, code = _cmd_scenarios(args)
        print(output)
        return code
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
