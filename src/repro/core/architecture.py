"""The F2C data-management architecture (Section IV).

:class:`F2CDataManagement` assembles the full system for a city:

* one :class:`~repro.core.nodes.FogNodeLevel1` per city section, running the
  acquisition block (with the configured aggregation pipeline) and keeping a
  short real-time window locally;
* one :class:`~repro.core.nodes.FogNodeLevel2` per district, combining its
  children's data;
* one :class:`~repro.core.nodes.CloudNode`, preserving everything
  permanently;
* the network topology and simulator connecting them, and a
  :class:`~repro.core.movement.DataMovementScheduler` that moves data
  upwards periodically.

Readings enter through the write-side pipeline of :mod:`repro.api` — one
:class:`~repro.api.pipeline.Pipeline` abstraction covering direct batch
ingest, the MQTT-style broker (per-message CSV, batched CSV, JSON/binary
column frames) and the multi-process sharded runtime.  The historical entry
points on this class (:meth:`ingest_readings`, :meth:`ingest_columns`,
:meth:`attach_broker`, :meth:`flush_broker`, :meth:`publish_frames`) remain
as thin delegating shims: they run the identical pipeline code and still
reproduce the golden byte-accounting fixtures, but are deprecated and warn.
"""

from __future__ import annotations

import warnings
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.aggregation.base import AggregationTechnique
from repro.aggregation.pipeline import AggregationPipeline
from repro.aggregation.redundancy import RedundantDataElimination
from repro.city.model import City
from repro.city.barcelona import (
    BARCELONA,
    CLOUD_NODE_ID,
    build_barcelona_topology,
    fog1_node_id,
    fog2_node_id,
)
from repro.common.errors import ConfigurationError, RoutingError
from repro.common.serialization import FRAME_FORMATS
from repro.core.movement import DataMovementScheduler, MovementPolicy
from repro.core.nodes import CloudNode, FogNodeLevel1, FogNodeLevel2
from repro.messaging.broker import Broker
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LayerName, NetworkTopology
from repro.network.traffic import TrafficAccountant
from repro.sensors.catalog import SensorCatalog
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns


def _warn_legacy_entry_point(old: str, new: str) -> None:
    """One deprecation warning per shimmed write entry point.

    ``stacklevel=3`` points at the shim's caller (helper → shim → caller).
    """
    warnings.warn(
        f"F2CDataManagement.{old}() is a deprecated shim; use {new} from repro.api "
        "(the shim delegates to the same pipeline and keeps working for now)",
        DeprecationWarning,
        stacklevel=3,
    )


#: Builds the default fog layer-1 aggregator the paper evaluates: redundant
#: data elimination (compression is applied at transmission time by the
#: movement scheduler / estimator, because it operates on the encoded batch).
def default_fog1_aggregator() -> AggregationTechnique:
    return RedundantDataElimination(scope="batch")


class F2CDataManagement:
    """A deployed F2C data-management system for one city."""

    def __init__(
        self,
        city: Optional[City] = None,
        catalog: Optional[SensorCatalog] = None,
        topology: Optional[NetworkTopology] = None,
        fog1_aggregator_factory: Optional[Callable[[], AggregationTechnique]] = default_fog1_aggregator,
        fog2_aggregator_factory: Optional[Callable[[], AggregationTechnique]] = None,
        movement_policy: Optional[MovementPolicy] = None,
        frame_format: Optional[str] = None,
        durable_dir: Optional[str] = None,
        durable_fog2: bool = False,
    ) -> None:
        if frame_format is not None and frame_format not in FRAME_FORMATS:
            raise ConfigurationError(
                f"frame_format must be one of {FRAME_FORMATS}, got {frame_format!r}"
            )
        if durable_fog2 and durable_dir is None:
            raise ConfigurationError("durable_fog2 requires durable_dir")
        #: Wire layout this deployment publishes column frames in ("binary"
        #: or "json"); ``None`` defers to the process-wide default
        #: (``REPRO_FRAME_FORMAT`` / serialization.DEFAULT_FRAME_FORMAT).
        #: Decoding always auto-detects, so mixed fleets interoperate.
        self.frame_format = frame_format
        #: Broker payloads that failed to decode (malformed CSV lines,
        #: corrupt/truncated/unknown-version frames) and were dropped.
        #: Malformed payloads are never ingested — not even partially — and
        #: never abort a flush; this counter is how operators see them.
        self.dropped_payloads = 0
        self.city = city if city is not None else BARCELONA
        self.catalog = catalog
        self.topology = topology if topology is not None else build_barcelona_topology(self.city)
        self.simulator = NetworkSimulator(self.topology, accountant=TrafficAccountant())

        self._fog1: Dict[str, FogNodeLevel1] = {}
        self._fog2: Dict[str, FogNodeLevel2] = {}
        self.cloud = CloudNode(node_id=CLOUD_NODE_ID)

        self._build_nodes(fog1_aggregator_factory, fog2_aggregator_factory)
        #: Durable segment logs (repro.storage.segments) when the deployment
        #: is configured with a durable directory; opening the logs rebuilds
        #: their indexes (and repairs damaged tails) immediately, so a
        #: recovery run can call :meth:`restore_from_segments` next.
        self.durable: Optional["DurableTierLogs"] = None
        if durable_dir is not None:
            from repro.storage.segments import DurableTierLogs

            self.durable = DurableTierLogs(durable_dir, fog2=durable_fog2)
            self.cloud.segment_log = self.durable.log_for(self.cloud.node_id)
            if durable_fog2:
                for fog2 in self._fog2.values():
                    fog2.segment_log = self.durable.log_for(fog2.node_id)
        self.scheduler = DataMovementScheduler(
            architecture=self, simulator=self.simulator, policy=movement_policy
        )
        self._broker: Optional[Broker] = None
        self._broker_batched = False
        self._sensor_to_section: Dict[str, str] = {}
        # Precomputed routing tables for the ingest hot path: section list
        # (for deterministic spreading of unassigned sensors), the
        # section → fog-1 node-id map, and a per-sensor resolution cache.
        self._section_ids: Tuple[str, ...] = tuple(s.section_id for s in self.city.sections)
        self._fog1_id_by_section: Dict[str, str] = {
            section_id: fog1_node_id(section_id) for section_id in self._section_ids
        }
        # sensor id -> fog L1 node id, for routes that cannot change between
        # calls (explicit assignment or stable hash spreading); invalidated
        # per sensor by assign_sensor.  Routes via a caller-supplied
        # default_section are never cached.
        self._sensor_node_cache: Dict[str, str] = {}
        self._parent_cache: Dict[str, str] = {}
        self._fog1_chain: Optional[Tuple[FogNodeLevel1, ...]] = None
        # (city_slug, section) -> rendered frame topic: frame publishing
        # renders each topic once per deployment instead of once per
        # (section, round) publish.
        self._frame_topic_cache: Dict[Tuple[str, str], str] = {}
        # Sharded runs: fog L1 storage statistics reported by the worker
        # processes that actually ran each node's acquisition; overlays the
        # local (empty) node stats in storage_report.
        self._fog1_stats_override: Dict[str, Dict[str, object]] = {}
        # True once acquisition is known to run in worker processes (the
        # sharded runtime): every local fog L1 store is then empty and
        # non-authoritative, even before the workers' FINAL stats merge.
        self._fog1_remote = False
        # The repro.api Pipeline engine every write entry point (new facade
        # and deprecated shims alike) runs through; built on first use.
        self._api_pipeline = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _build_nodes(
        self,
        fog1_aggregator_factory: Optional[Callable[[], AggregationTechnique]],
        fog2_aggregator_factory: Optional[Callable[[], AggregationTechnique]],
    ) -> None:
        for district in self.city.districts:
            fog2_id = fog2_node_id(district.district_id)
            if not self.topology.has_node(fog2_id):
                raise ConfigurationError(f"topology is missing fog layer-2 node {fog2_id}")
            fog2 = FogNodeLevel2(
                node_id=fog2_id,
                district_id=district.district_id,
                aggregator=fog2_aggregator_factory() if fog2_aggregator_factory else None,
            )
            self._fog2[fog2_id] = fog2
            for section in district.sections:
                fog1_id = fog1_node_id(section.section_id)
                if not self.topology.has_node(fog1_id):
                    raise ConfigurationError(f"topology is missing fog layer-1 node {fog1_id}")
                fog1 = FogNodeLevel1(
                    node_id=fog1_id,
                    section_id=section.section_id,
                    aggregator=fog1_aggregator_factory() if fog1_aggregator_factory else None,
                    catalog=self.catalog,
                    city_name=self.city.name.lower(),
                )
                self._fog1[fog1_id] = fog1
                fog2.register_child(fog1_id)

    # ------------------------------------------------------------------ #
    # Node access
    # ------------------------------------------------------------------ #
    def fog1_nodes(self) -> List[FogNodeLevel1]:
        return list(self._fog1.values())

    def fog1_chain(self) -> Tuple[FogNodeLevel1, ...]:
        """Every fog layer-1 node, in canonical city-section order.

        The node set is fixed after construction, so the tuple is built
        once and shared — city-wide scatter queries walk it per query and
        a fresh list per call would be pure allocation churn.
        """
        chain = self._fog1_chain
        if chain is None:
            chain = self._fog1_chain = tuple(self._fog1.values())
        return chain

    def fog2_nodes(self) -> List[FogNodeLevel2]:
        return list(self._fog2.values())

    def fog1_node(self, node_id: str) -> FogNodeLevel1:
        try:
            return self._fog1[node_id]
        except KeyError as exc:
            raise RoutingError(f"unknown fog layer-1 node: {node_id}") from exc

    def fog2_node(self, node_id: str) -> FogNodeLevel2:
        try:
            return self._fog2[node_id]
        except KeyError as exc:
            raise RoutingError(f"unknown fog layer-2 node: {node_id}") from exc

    def fog1_for_section(self, section_id: str) -> FogNodeLevel1:
        return self.fog1_node(fog1_node_id(section_id))

    def parent_of(self, node_id: str) -> str:
        # The topology is fixed after construction, so parent lookups (one
        # per node per transfer round) are memoized.
        parent = self._parent_cache.get(node_id)
        if parent is None:
            parent = self.topology.parent_of(node_id)
            if parent is None:
                raise RoutingError(f"node {node_id} has no parent in the topology")
            self._parent_cache[node_id] = parent
        return parent

    def node_by_id(self, node_id: str):
        """Any node of the hierarchy by id (fog L1, fog L2, or the cloud)."""
        if node_id in self._fog1:
            return self._fog1[node_id]
        if node_id in self._fog2:
            return self._fog2[node_id]
        if node_id == self.cloud.node_id:
            return self.cloud
        raise RoutingError(f"unknown node: {node_id}")

    # ------------------------------------------------------------------ #
    # Sensor placement
    # ------------------------------------------------------------------ #
    def assign_sensor(self, sensor_id: str, section_id: str) -> None:
        """Record that *sensor_id* is physically located in *section_id*."""
        if section_id not in self._fog1_id_by_section:
            raise ConfigurationError(f"unknown section: {section_id}")
        self._sensor_to_section[sensor_id] = section_id
        self._sensor_node_cache.pop(sensor_id, None)

    def section_of_sensor(self, sensor_id: str) -> Optional[str]:
        return self._sensor_to_section.get(sensor_id)

    def sensors_in_section(self, section_id: str) -> List[str]:
        """Sensor ids explicitly assigned to *section_id* (insertion order).

        Only explicit :meth:`assign_sensor` assignments are known here;
        hash-spread sensors have no recorded home.  Failover tooling uses
        this to re-home a failed section's sensors onto the replacement
        node's section.
        """
        if section_id not in self._fog1_id_by_section:
            raise ConfigurationError(f"unknown section: {section_id}")
        return [
            sensor_id
            for sensor_id, assigned in self._sensor_to_section.items()
            if assigned == section_id
        ]

    def spread_section(self, sensor_id: str) -> str:
        """Deterministic section for a sensor with no explicit assignment.

        Uses a stable hash (CRC-32) so the spreading is identical across
        processes and ``PYTHONHASHSEED`` values — the builtin ``hash()`` of a
        string is salted per interpreter run and would shuffle unassigned
        sensors between fog nodes from one run to the next.  Public because
        the sharded runtime's workers use it to decide shard membership of
        unassigned sensors.
        """
        digest = zlib.crc32(sensor_id.encode("utf-8"))
        return self._section_ids[digest % len(self._section_ids)]

    # Internal callers predate the public promotion.
    _spread_section = spread_section

    # ------------------------------------------------------------------ #
    # Ingestion (deprecated shims over the repro.api pipeline)
    # ------------------------------------------------------------------ #
    @property
    def api_pipeline(self):
        """The :class:`repro.api.pipeline.Pipeline` engine bound to this system.

        Every write entry point — the :mod:`repro.api` facade and the
        deprecated shims below alike — runs through this one engine, so the
        behaviour (routing, accounting, golden byte fidelity) cannot drift
        between the surfaces.  Internal callers use this property directly;
        external code should hold a :class:`repro.api.F2CClient` instead.
        """
        pipeline = self._api_pipeline
        if pipeline is None:
            from repro.api.pipeline import Pipeline

            pipeline = self._api_pipeline = Pipeline.for_system(self)
        return pipeline

    def ingest_readings(
        self,
        readings: Iterable[Reading],
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Deprecated shim for :meth:`repro.api.pipeline.Pipeline.ingest_rows`.

        Routes readings to their section's fog layer-1 node and acquires
        them; returns the readings acquired per node.  Use
        ``repro.api.connect().ingest(...)`` (or ``Pipeline.ingest_rows``)
        in new code.
        """
        _warn_legacy_entry_point("ingest_readings", "F2CClient.ingest / Pipeline.ingest_rows")
        return self.api_pipeline.ingest_rows(readings, now=now, default_section=default_section)

    def ingest_columns(
        self,
        columns: ReadingColumns,
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Deprecated shim for :meth:`repro.api.pipeline.Pipeline.ingest_columns`.

        Columnar-native ingest: routes and acquires a whole column batch.
        Use ``Pipeline.ingest_columns`` from :mod:`repro.api` in new code.
        """
        _warn_legacy_entry_point("ingest_columns", "Pipeline.ingest_columns")
        return self.api_pipeline.ingest_columns(columns, now=now, default_section=default_section)

    def _resolve_node_cached(self, sensor_id: str, default_section: Optional[str]) -> str:
        """Resolve a sensor's fog L1 node, caching stable routes.

        Explicit assignment wins, then the caller's *default_section*, then
        stable hash-spreading.  Assigned and spread routes are cached in
        ``_sensor_node_cache`` (callers consult it before calling here, and
        must bypass it when a *default_section* is in play so a per-call
        default is honoured for unassigned sensors).
        """
        section_id = self._sensor_to_section.get(sensor_id)
        if section_id is not None:
            node_id = self._fog1_id_by_section[section_id]
        elif default_section is not None:
            # Default-section routing depends on the call, never cached.
            return self._fog1_id_by_section.get(default_section) or fog1_node_id(default_section)
        else:
            node_id = self._fog1_id_by_section[self._spread_section(sensor_id)]
        self._sensor_node_cache[sensor_id] = node_id
        return node_id

    # ------------------------------------------------------------------ #
    # Broker integration (deprecated shims over the repro.api pipeline)
    # ------------------------------------------------------------------ #
    def attach_broker(self, broker: Broker, city_slug: str = "bcn", batched: bool = False) -> None:
        """Deprecated shim for :meth:`repro.api.pipeline.Pipeline.attach_broker`.

        Subscribes every fog layer-1 node to its section's topic subtree;
        with ``batched=True`` messages park in per-node inboxes drained by
        :meth:`flush_broker`.  New code selects a broker transport in a
        :class:`repro.api.PipelineConfig` instead.
        """
        _warn_legacy_entry_point("attach_broker", "PipelineConfig(transport='broker-csv'|'frames-*')")
        self.api_pipeline.attach_broker(broker, city_slug=city_slug, batched=batched)

    def flush_broker(self, now: Optional[float] = None) -> Dict[str, int]:
        """Deprecated shim for :meth:`repro.api.pipeline.Pipeline.flush_broker`.

        Drains every fog node's broker inbox and acquires it as one batch;
        returns the readings acquired per fog layer-1 node.
        """
        _warn_legacy_entry_point("flush_broker", "IngestSession.ingest / Pipeline.flush_broker")
        return self.api_pipeline.flush_broker(now=now)

    def publish_frames(
        self,
        broker: Optional[Broker] = None,
        readings: Iterable[Reading] = (),
        city_slug: str = "bcn",
        default_section: Optional[str] = None,
        timestamp: float = 0.0,
        frame_format: Optional[str] = None,
    ) -> Dict[str, int]:
        """Deprecated shim for :meth:`repro.api.pipeline.Pipeline.publish_frames`.

        Publishes readings as one column frame per section on
        ``city/<slug>/<section>/frame``; returns the readings framed per
        section.  New code uses a ``frames-json`` / ``frames-binary``
        transport session from :mod:`repro.api`.
        """
        _warn_legacy_entry_point("publish_frames", "IngestSession.ingest / Pipeline.publish_frames")
        return self.api_pipeline.publish_frames(
            broker,
            readings,
            city_slug=city_slug,
            default_section=default_section,
            timestamp=timestamp,
            frame_format=frame_format,
        )

    # ------------------------------------------------------------------ #
    # Sharded-runtime integration (supervisor side)
    # ------------------------------------------------------------------ #
    def receive_worker_batch(self, node_id: str, batch: ReadingBatch, now: float) -> int:
        """Absorb a fog L1 batch that was acquired in a worker process.

        The batch already went through the acquisition block in the worker
        (it is what the node's ``drain_for_upward`` returned there); this
        hop simulates and accounts the fog L1 → fog L2 transfer exactly
        like :meth:`~repro.core.movement.DataMovementScheduler.sync_fog1_to_fog2`
        does for a locally-drained node, then hands the batch to the parent
        fog L2 node.  Returns the bytes moved.
        """
        self.fog1_node(node_id)  # validates the id
        return self.scheduler.move_up_from_fog1(node_id, batch, now)

    def receive_worker_columns(self, node_id: str, columns, now: float) -> int:
        """Columns-native :meth:`receive_worker_batch` (no batch wrapper).

        The supervisor hands decoded worker columns straight through:
        transfer simulation, fog L2 storage and the pending-upward queue
        all consume the columns directly, so absorbing a sync point
        allocates no per-batch ``ReadingBatch`` objects.  Returns the
        bytes moved.
        """
        self.fog1_node(node_id)  # validates the id
        return self.scheduler.move_up_from_fog1_columns(node_id, columns, now)

    def merge_edge_transfers(self, records: Iterable[Dict[str, object]]) -> int:
        """Replay worker-side sensors → fog L1 transfers into the accountant.

        Workers record the edge hop in their own accountant at ingest time;
        merging the records here keeps :meth:`traffic_report` identical to
        a single-process run.  Returns the number of records merged.
        """
        merged = 0
        record_transfer = self.simulator.accountant.record_transfer
        for record in records:
            record_transfer(
                timestamp=float(record["timestamp"]),
                source=str(record["source"]),
                target=str(record["target"]),
                target_layer=LayerName.FOG_1,
                size_bytes=int(record["size_bytes"]),
                message_count=int(record.get("message_count", 1)),
            )
            merged += 1
        return merged

    def merge_fog1_stats(self, stats_by_node: Dict[str, Dict[str, object]]) -> None:
        """Overlay worker-reported fog L1 storage statistics.

        In a sharded run the fog L1 stores live in the workers; the
        supervisor's local nodes never ingest.  ``storage_report`` prefers
        these reported statistics, so the merged report matches the
        single-process run byte for byte.
        """
        for node_id, stats in stats_by_node.items():
            self.fog1_node(node_id)  # validates the id
            self._fog1_stats_override[node_id] = dict(stats)

    def mark_fog1_remote(self) -> None:
        """Declare every fog layer-1 store non-authoritative up front.

        The sharded supervisor calls this when its run starts: acquisition
        happens in worker processes, so the local fog L1 stores are empty
        for the whole run — not only after the workers' FINAL statistics
        merge.  Queries served *during* the run (the serve mode) then
        resolve to fog layer 2 / cloud immediately instead of trusting an
        empty local store.
        """
        self._fog1_remote = True

    def fog1_store_is_authoritative(self, node_id: str) -> bool:
        """Whether *node_id*'s local store actually holds its section's data.

        False after :meth:`merge_fog1_stats` named the node (its acquisition
        ran in a worker process, so the supervisor-local store is empty and
        readers — the :mod:`repro.api` query service — must fall through to
        fog layer 2 / cloud for its area), and for every node once
        :meth:`mark_fog1_remote` declared acquisition remote.
        """
        self.fog1_node(node_id)  # validates the id
        return not self._fog1_remote and node_id not in self._fog1_stats_override

    # ------------------------------------------------------------------ #
    # Data movement & reporting
    # ------------------------------------------------------------------ #
    def synchronise(self, now: Optional[float] = None) -> Dict[str, Dict[str, int]]:
        """Move pending data fog L1 → fog L2 → cloud immediately."""
        return self.scheduler.full_sync(now)

    def restore_from_segments(self) -> Dict[str, int]:
        """Replay the durable segment logs into this (fresh) deployment.

        The recovery path: build the system with the same ``durable_dir``
        (opening the logs repairs any damaged tail), then replay — cloud
        records run through the normal receive path so storage *and* the
        preservation/archive state rebuild in original arrival order, and
        the SHA-256 cloud digest of a replayed run is byte-identical to
        the uncrashed one.  Returns the replay counters.
        """
        if self.durable is None:
            raise ConfigurationError(
                "restore_from_segments requires a deployment built with durable_dir"
            )
        return self.durable.restore(self)

    def durable_report(self) -> Dict[str, object]:
        """Durable-log counters (health surface); ``enabled: False`` without."""
        if self.durable is None:
            return {"enabled": False}
        return self.durable.report()

    def traffic_report(self) -> Dict[str, int]:
        """Bytes received per layer (the paper's core comparison quantity)."""
        return self.simulator.accountant.layer_report()

    def storage_report(self) -> Dict[str, Dict[str, object]]:
        """Storage statistics per node, keyed by node id.

        Fog L1 entries prefer worker-reported statistics merged via
        :meth:`merge_fog1_stats` (sharded runs), falling back to the local
        node's own counters.
        """
        report: Dict[str, Dict[str, object]] = {}
        override = self._fog1_stats_override
        for fog1 in self.fog1_nodes():
            reported = override.get(fog1.node_id)
            report[fog1.node_id] = dict(reported) if reported is not None else fog1.stats()
        for fog2 in self.fog2_nodes():
            report[fog2.node_id] = fog2.stats()
        report[self.cloud.node_id] = self.cloud.stats()
        return report

    def summary(self) -> Dict[str, object]:
        """Compact deployment summary (Fig. 6 style): node counts per layer."""
        return {
            "city": self.city.name,
            "fog_layer_1_nodes": len(self._fog1),
            "fog_layer_2_nodes": len(self._fog2),
            "cloud_nodes": 1,
            "districts": self.city.district_count,
            "sections": self.city.section_count,
        }


def run_sharded(workers: int, workload=None, catalog: Optional[SensorCatalog] = None, **kwargs):
    """Deprecated shim for the sharded transport of :mod:`repro.api`.

    Runs a seeded city workload sharded over *workers* ingest processes.
    New code uses ``repro.api.run_workload(transport="sharded",
    workers=N)`` (a queryable client) or calls
    :func:`repro.runtime.supervisor.run_sharded` directly for the raw
    :class:`~repro.runtime.supervisor.ShardedRunResult`.
    """
    warnings.warn(
        "repro.core.architecture.run_sharded() is a deprecated shim; use "
        "repro.api.run_workload(transport='sharded', workers=N) or "
        "repro.runtime.run_sharded()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.supervisor import run_sharded as _run_sharded

    return _run_sharded(workers=workers, workload=workload, catalog=catalog, **kwargs)
