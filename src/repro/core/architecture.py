"""The F2C data-management architecture (Section IV).

:class:`F2CDataManagement` assembles the full system for a city:

* one :class:`~repro.core.nodes.FogNodeLevel1` per city section, running the
  acquisition block (with the configured aggregation pipeline) and keeping a
  short real-time window locally;
* one :class:`~repro.core.nodes.FogNodeLevel2` per district, combining its
  children's data;
* one :class:`~repro.core.nodes.CloudNode`, preserving everything
  permanently;
* the network topology and simulator connecting them, and a
  :class:`~repro.core.movement.DataMovementScheduler` that moves data
  upwards periodically.

Readings enter through :meth:`ingest_readings` (direct) or through an
MQTT-style broker subscription (:meth:`attach_broker`), reproducing the data
path of a real deployment.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.aggregation.base import AggregationTechnique
from repro.aggregation.pipeline import AggregationPipeline
from repro.aggregation.redundancy import RedundantDataElimination
from repro.city.model import City
from repro.city.barcelona import (
    BARCELONA,
    CLOUD_NODE_ID,
    build_barcelona_topology,
    fog1_node_id,
    fog2_node_id,
)
from repro.common.errors import ConfigurationError, RoutingError
from repro.common.serialization import FRAME_FORMATS
from repro.core.movement import DataMovementScheduler, MovementPolicy
from repro.core.nodes import CloudNode, FogNodeLevel1, FogNodeLevel2
from repro.messaging.broker import Broker, Message
from repro.network.simulator import NetworkSimulator
from repro.network.topology import LayerName, NetworkTopology
from repro.network.traffic import TrafficAccountant
from repro.sensors.catalog import SensorCatalog
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns


#: Builds the default fog layer-1 aggregator the paper evaluates: redundant
#: data elimination (compression is applied at transmission time by the
#: movement scheduler / estimator, because it operates on the encoded batch).
def default_fog1_aggregator() -> AggregationTechnique:
    return RedundantDataElimination(scope="batch")


class F2CDataManagement:
    """A deployed F2C data-management system for one city."""

    def __init__(
        self,
        city: Optional[City] = None,
        catalog: Optional[SensorCatalog] = None,
        topology: Optional[NetworkTopology] = None,
        fog1_aggregator_factory: Optional[Callable[[], AggregationTechnique]] = default_fog1_aggregator,
        fog2_aggregator_factory: Optional[Callable[[], AggregationTechnique]] = None,
        movement_policy: Optional[MovementPolicy] = None,
        frame_format: Optional[str] = None,
    ) -> None:
        if frame_format is not None and frame_format not in FRAME_FORMATS:
            raise ConfigurationError(
                f"frame_format must be one of {FRAME_FORMATS}, got {frame_format!r}"
            )
        #: Wire layout this deployment publishes column frames in ("binary"
        #: or "json"); ``None`` defers to the process-wide default
        #: (``REPRO_FRAME_FORMAT`` / serialization.DEFAULT_FRAME_FORMAT).
        #: Decoding always auto-detects, so mixed fleets interoperate.
        self.frame_format = frame_format
        #: Broker payloads that failed to decode (malformed CSV lines,
        #: corrupt/truncated/unknown-version frames) and were dropped.
        #: Malformed payloads are never ingested — not even partially — and
        #: never abort a flush; this counter is how operators see them.
        self.dropped_payloads = 0
        self.city = city if city is not None else BARCELONA
        self.catalog = catalog
        self.topology = topology if topology is not None else build_barcelona_topology(self.city)
        self.simulator = NetworkSimulator(self.topology, accountant=TrafficAccountant())

        self._fog1: Dict[str, FogNodeLevel1] = {}
        self._fog2: Dict[str, FogNodeLevel2] = {}
        self.cloud = CloudNode(node_id=CLOUD_NODE_ID)

        self._build_nodes(fog1_aggregator_factory, fog2_aggregator_factory)
        self.scheduler = DataMovementScheduler(
            architecture=self, simulator=self.simulator, policy=movement_policy
        )
        self._broker: Optional[Broker] = None
        self._broker_batched = False
        self._sensor_to_section: Dict[str, str] = {}
        # Precomputed routing tables for the ingest hot path: section list
        # (for deterministic spreading of unassigned sensors), the
        # section → fog-1 node-id map, and a per-sensor resolution cache.
        self._section_ids: Tuple[str, ...] = tuple(s.section_id for s in self.city.sections)
        self._fog1_id_by_section: Dict[str, str] = {
            section_id: fog1_node_id(section_id) for section_id in self._section_ids
        }
        # sensor id -> fog L1 node id, for routes that cannot change between
        # calls (explicit assignment or stable hash spreading); invalidated
        # per sensor by assign_sensor.  Routes via a caller-supplied
        # default_section are never cached.
        self._sensor_node_cache: Dict[str, str] = {}
        self._parent_cache: Dict[str, str] = {}
        # (city_slug, section) -> rendered frame topic: frame publishing
        # renders each topic once per deployment instead of once per
        # (section, round) publish.
        self._frame_topic_cache: Dict[Tuple[str, str], str] = {}
        # Sharded runs: fog L1 storage statistics reported by the worker
        # processes that actually ran each node's acquisition; overlays the
        # local (empty) node stats in storage_report.
        self._fog1_stats_override: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _build_nodes(
        self,
        fog1_aggregator_factory: Optional[Callable[[], AggregationTechnique]],
        fog2_aggregator_factory: Optional[Callable[[], AggregationTechnique]],
    ) -> None:
        for district in self.city.districts:
            fog2_id = fog2_node_id(district.district_id)
            if not self.topology.has_node(fog2_id):
                raise ConfigurationError(f"topology is missing fog layer-2 node {fog2_id}")
            fog2 = FogNodeLevel2(
                node_id=fog2_id,
                district_id=district.district_id,
                aggregator=fog2_aggregator_factory() if fog2_aggregator_factory else None,
            )
            self._fog2[fog2_id] = fog2
            for section in district.sections:
                fog1_id = fog1_node_id(section.section_id)
                if not self.topology.has_node(fog1_id):
                    raise ConfigurationError(f"topology is missing fog layer-1 node {fog1_id}")
                fog1 = FogNodeLevel1(
                    node_id=fog1_id,
                    section_id=section.section_id,
                    aggregator=fog1_aggregator_factory() if fog1_aggregator_factory else None,
                    catalog=self.catalog,
                    city_name=self.city.name.lower(),
                )
                self._fog1[fog1_id] = fog1
                fog2.register_child(fog1_id)

    # ------------------------------------------------------------------ #
    # Node access
    # ------------------------------------------------------------------ #
    def fog1_nodes(self) -> List[FogNodeLevel1]:
        return list(self._fog1.values())

    def fog2_nodes(self) -> List[FogNodeLevel2]:
        return list(self._fog2.values())

    def fog1_node(self, node_id: str) -> FogNodeLevel1:
        try:
            return self._fog1[node_id]
        except KeyError as exc:
            raise RoutingError(f"unknown fog layer-1 node: {node_id}") from exc

    def fog2_node(self, node_id: str) -> FogNodeLevel2:
        try:
            return self._fog2[node_id]
        except KeyError as exc:
            raise RoutingError(f"unknown fog layer-2 node: {node_id}") from exc

    def fog1_for_section(self, section_id: str) -> FogNodeLevel1:
        return self.fog1_node(fog1_node_id(section_id))

    def parent_of(self, node_id: str) -> str:
        # The topology is fixed after construction, so parent lookups (one
        # per node per transfer round) are memoized.
        parent = self._parent_cache.get(node_id)
        if parent is None:
            parent = self.topology.parent_of(node_id)
            if parent is None:
                raise RoutingError(f"node {node_id} has no parent in the topology")
            self._parent_cache[node_id] = parent
        return parent

    def node_by_id(self, node_id: str):
        """Any node of the hierarchy by id (fog L1, fog L2, or the cloud)."""
        if node_id in self._fog1:
            return self._fog1[node_id]
        if node_id in self._fog2:
            return self._fog2[node_id]
        if node_id == self.cloud.node_id:
            return self.cloud
        raise RoutingError(f"unknown node: {node_id}")

    # ------------------------------------------------------------------ #
    # Sensor placement
    # ------------------------------------------------------------------ #
    def assign_sensor(self, sensor_id: str, section_id: str) -> None:
        """Record that *sensor_id* is physically located in *section_id*."""
        if section_id not in self._fog1_id_by_section:
            raise ConfigurationError(f"unknown section: {section_id}")
        self._sensor_to_section[sensor_id] = section_id
        self._sensor_node_cache.pop(sensor_id, None)

    def section_of_sensor(self, sensor_id: str) -> Optional[str]:
        return self._sensor_to_section.get(sensor_id)

    def spread_section(self, sensor_id: str) -> str:
        """Deterministic section for a sensor with no explicit assignment.

        Uses a stable hash (CRC-32) so the spreading is identical across
        processes and ``PYTHONHASHSEED`` values — the builtin ``hash()`` of a
        string is salted per interpreter run and would shuffle unassigned
        sensors between fog nodes from one run to the next.  Public because
        the sharded runtime's workers use it to decide shard membership of
        unassigned sensors.
        """
        digest = zlib.crc32(sensor_id.encode("utf-8"))
        return self._section_ids[digest % len(self._section_ids)]

    # Internal callers predate the public promotion.
    _spread_section = spread_section

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest_readings(
        self,
        readings: Iterable[Reading],
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Route readings to their section's fog layer-1 node and acquire them.

        Readings from sensors without an explicit assignment are spread over
        sections deterministically (stable CRC-32 hash of the sensor id, so
        the spreading is identical across runs), or sent to *default_section*
        when given.  Returns the number of readings acquired per fog layer-1
        node.

        The edge→fog hop is also recorded in the traffic accountant, so the
        per-layer byte report includes what fog layer 1 received from the
        sensors themselves.
        """
        timestamp = now if now is not None else self.simulator.clock.now()
        if isinstance(readings, ReadingBatch):
            return self.ingest_columns(readings.columns, now=timestamp, default_section=default_section)
        if isinstance(readings, ReadingColumns):
            return self.ingest_columns(readings, now=timestamp, default_section=default_section)
        # Bucket into plain per-node lists first (one append per reading),
        # then decompose each node's list into columns in bulk — the batch
        # stays columnar from here to the cloud.  Routing is inlined with a
        # persistent sensor → node cache: the cache hit is the common case
        # and must not pay a function call per reading.
        node_cache = self._sensor_node_cache
        route = self._resolve_node_cached
        per_node: Dict[str, List[Reading]] = defaultdict(list)
        if default_section is None:
            for reading in readings:
                sensor_id = reading.sensor_id
                node_id = node_cache.get(sensor_id)
                if node_id is None:
                    node_id = route(sensor_id, None)
                per_node[node_id].append(reading)
        else:
            # A caller default overrides cached spread routes, so the cache
            # is bypassed (assignment still wins inside the resolver).
            for reading in readings:
                per_node[route(reading.sensor_id, default_section)].append(reading)

        acquired_counts: Dict[str, int] = {}
        for node_id, node_readings in per_node.items():
            batch = ReadingBatch.from_columns(ReadingColumns.from_reading_list(node_readings))
            acquired_counts[node_id] = self._acquire_at_node(node_id, batch, timestamp)
        return acquired_counts

    def ingest_columns(
        self,
        columns: ReadingColumns,
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Columnar-native ingest: route and acquire a whole column batch.

        Same semantics as :meth:`ingest_readings` but the input is already
        in the native column representation (e.g. decoded wire frames or an
        in-process columnar feed), so no per-reading objects exist anywhere
        on the path.
        """
        timestamp = now if now is not None else self.simulator.clock.now()
        node_cache = self._sensor_node_cache
        route = self._resolve_node_cached
        buckets: Dict[str, List[int]] = {}
        index = 0
        for sensor_id in columns.sensor_ids:
            if default_section is None:
                node_id = node_cache.get(sensor_id)
                if node_id is None:
                    node_id = route(sensor_id, None)
            else:
                node_id = route(sensor_id, default_section)
            bucket = buckets.get(node_id)
            if bucket is None:
                bucket = buckets[node_id] = []
            bucket.append(index)
            index += 1
        acquired_counts: Dict[str, int] = {}
        if len(buckets) == 1:
            (node_id, _), = buckets.items()
            acquired_counts[node_id] = self._acquire_at_node(
                node_id, ReadingBatch.from_columns(columns), timestamp
            )
            return acquired_counts
        for node_id, indices in buckets.items():
            batch = ReadingBatch.from_columns(columns.gather(indices))
            acquired_counts[node_id] = self._acquire_at_node(node_id, batch, timestamp)
        return acquired_counts

    def _resolve_node_cached(self, sensor_id: str, default_section: Optional[str]) -> str:
        """Resolve a sensor's fog L1 node, caching stable routes.

        Explicit assignment wins, then the caller's *default_section*, then
        stable hash-spreading.  Assigned and spread routes are cached in
        ``_sensor_node_cache`` (callers consult it before calling here, and
        must bypass it when a *default_section* is in play so a per-call
        default is honoured for unassigned sensors).
        """
        section_id = self._sensor_to_section.get(sensor_id)
        if section_id is not None:
            node_id = self._fog1_id_by_section[section_id]
        elif default_section is not None:
            # Default-section routing depends on the call, never cached.
            return self._fog1_id_by_section.get(default_section) or fog1_node_id(default_section)
        else:
            node_id = self._fog1_id_by_section[self._spread_section(sensor_id)]
        self._sensor_node_cache[sensor_id] = node_id
        return node_id

    def _acquire_at_node(self, node_id: str, batch: ReadingBatch, timestamp: float) -> int:
        fog1 = self.fog1_node(node_id)
        self.simulator.accountant.record_transfer(
            timestamp=timestamp,
            source=f"sensors/{fog1.section_id}",
            target=node_id,
            target_layer=LayerName.FOG_1,
            size_bytes=batch.total_bytes,
            message_count=len(batch),
        )
        acquired = fog1.ingest(batch, timestamp)
        return len(acquired)

    # ------------------------------------------------------------------ #
    # Broker integration
    # ------------------------------------------------------------------ #
    def attach_broker(self, broker: Broker, city_slug: str = "bcn", batched: bool = False) -> None:
        """Subscribe every fog layer-1 node to its section's topic subtree.

        Topics follow ``city/<city>/<district>/<section>/<category>/<type>``;
        the payload must be the reading's wire encoding produced by
        :meth:`repro.sensors.readings.Reading.encode` and is re-parsed into a
        minimal reading (value as string) for acquisition.

        With ``batched=True`` messages are parked in a per-fog-node broker
        inbox instead of running the acquisition block per message; call
        :meth:`flush_broker` to drain every inbox and acquire each node's
        backlog as one batch.  This is the high-throughput ingest mode: the
        acquisition block, traffic accounting and storage bookkeeping all run
        once per batch instead of once per reading.
        """
        self._broker = broker
        self._broker_batched = batched
        for district in self.city.districts:
            for section in district.sections:
                node_id = fog1_node_id(section.section_id)
                # Section ids contain '/', which is fine for MQTT topics.
                topic_filter = f"city/{city_slug}/{section.section_id}/#"
                broker.subscribe(
                    client_id=node_id,
                    topic_filter=topic_filter,
                    handler=self._broker_handler(node_id),
                    batched=batched,
                )

    @staticmethod
    def _parse_broker_message(message: Message) -> Optional[Reading]:
        """Decode one CSV wire payload back into a minimal reading.

        Returns ``None`` for anything that does not parse as a reading line
        — too few fields, a non-numeric timestamp, bytes that are not UTF-8
        (e.g. a binary frame whose magic got corrupted in flight).  A bad
        payload is dropped, never raised.
        """
        from repro.common.serialization import decode_csv_line

        try:
            fields = decode_csv_line(message.payload.rstrip(b" "))
        except UnicodeDecodeError:
            return None
        if len(fields) < 4:
            return None
        sensor_id, sensor_type, value_text, timestamp_text = fields[:4]
        try:
            value: object = float(value_text)
        except ValueError:
            value = value_text
        try:
            timestamp = float(timestamp_text)
        except ValueError:
            return None
        category = message.topic.split("/")[-2] if message.topic.count("/") >= 2 else "unknown"
        return Reading(
            sensor_id=sensor_id,
            sensor_type=sensor_type,
            category=category,
            value=value,
            timestamp=timestamp,
            size_bytes=len(message.payload),
        )

    def _decode_message_columns(self, message: Message) -> Optional[ReadingColumns]:
        """Decode any broker payload (column frame or CSV line) into columns.

        Column frames carry the whole batch, including the per-reading
        Table-I wire sizes, so downstream traffic accounting is identical to
        the per-reading CSV path.  Returns ``None`` (and counts the drop)
        for any malformed payload: a frame decodes whole or not at all, so
        a corrupt message can neither abort a flush nor partially ingest.
        """
        payload = message.payload
        if ReadingColumns.is_frame(payload):
            try:
                return ReadingColumns.decode_frame(payload)
            except (ValueError, TypeError, KeyError, OverflowError):
                # Malformed frames are dropped exactly like malformed CSV
                # payloads (QoS 0): one corrupt message must not abort a
                # flush and lose the rest of the drained inbox.
                self.dropped_payloads += 1
                return None
        reading = self._parse_broker_message(message)
        if reading is None:
            self.dropped_payloads += 1
            return None
        columns = ReadingColumns()
        columns.append_reading(reading)
        return columns

    def _broker_handler(self, node_id: str):
        def handle(message: Message) -> None:
            columns = self._decode_message_columns(message)
            if columns is None or not len(columns):
                return
            timestamp = max(columns.timestamps)
            fog1 = self.fog1_node(node_id)
            self.simulator.accountant.record_transfer(
                timestamp=timestamp,
                source=f"broker/{node_id}",
                target=node_id,
                target_layer=LayerName.FOG_1,
                size_bytes=columns.total_bytes,
                message_count=len(columns),
            )
            fog1.ingest(ReadingBatch.from_columns(columns), timestamp)

        return handle

    def flush_broker(self, now: Optional[float] = None) -> Dict[str, int]:
        """Drain every fog node's broker inbox and acquire it as one batch.

        Only meaningful after ``attach_broker(..., batched=True)``.  Returns
        the number of readings acquired per fog layer-1 node.  The traffic
        accountant records one transfer per (node, flush) with the summed
        byte volume, mirroring what :meth:`ingest_readings` does for direct
        batch ingestion.
        """
        if self._broker is None:
            raise ConfigurationError("no broker attached")
        if not self._broker_batched:
            raise ConfigurationError("broker was not attached in batched mode")
        acquired_counts: Dict[str, int] = {}
        # Drain only this architecture's own fog layer-1 subscriptions: other
        # batched clients may share the broker and own their inboxes.
        decode = self._decode_message_columns
        for node_id in self._fog1:
            messages = self._broker.drain_inbox(node_id)
            if not messages:
                continue
            columns = ReadingColumns()
            for message in messages:
                decoded = decode(message)
                if decoded is not None:
                    columns.extend_columns(decoded)
            if not len(columns):
                continue
            # Batch maximum, not the last arrival: with out-of-order arrivals
            # an older last message would make newer readings look like they
            # are from the future and fail the quality phase's skew check.
            timestamp = now if now is not None else max(columns.timestamps)
            fog1 = self.fog1_node(node_id)
            self.simulator.accountant.record_transfer(
                timestamp=timestamp,
                source=f"broker/{node_id}",
                target=node_id,
                target_layer=LayerName.FOG_1,
                size_bytes=columns.total_bytes,
                message_count=len(columns),
            )
            acquired = fog1.ingest(ReadingBatch.from_columns(columns), timestamp)
            acquired_counts[node_id] = len(acquired)
        return acquired_counts

    def publish_frames(
        self,
        broker: Optional[Broker] = None,
        readings: Iterable[Reading] = (),
        city_slug: str = "bcn",
        default_section: Optional[str] = None,
        timestamp: float = 0.0,
        frame_format: Optional[str] = None,
    ) -> Dict[str, int]:
        """Publish readings as one column frame per section (wire fast path).

        Readings are routed to sections exactly like :meth:`ingest_readings`
        routes them to fog nodes, then each section's rows are encoded into
        a single :meth:`ReadingColumns.encode_frame` payload and published
        on ``city/<slug>/<section>/frame``.  Fog layer-1 subscribers decode
        the frame back into columns (see :meth:`_decode_message_columns`),
        so one broker delivery replaces one delivery per reading while the
        per-reading Table-I wire sizes — carried inside the frame — keep the
        traffic accounting identical.

        *frame_format* overrides the wire layout for this call; otherwise
        the system's configured :attr:`frame_format` applies (and, when that
        is ``None`` too, the process-wide default).  Receivers auto-detect
        the layout per payload, so format can change mid-stream.

        Returns the number of readings framed per section.
        """
        if broker is None:
            broker = self._broker
        if broker is None:
            raise ConfigurationError("no broker attached and none supplied")
        if frame_format is None:
            frame_format = self.frame_format
        elif frame_format not in FRAME_FORMATS:
            raise ConfigurationError(
                f"frame_format must be one of {FRAME_FORMATS}, got {frame_format!r}"
            )
        section_by_node = {node_id: fog1.section_id for node_id, fog1 in self._fog1.items()}
        node_cache = self._sensor_node_cache
        route = self._resolve_node_cached
        per_section: Dict[str, List[Reading]] = defaultdict(list)
        for reading in readings:
            if default_section is None:
                node_id = node_cache.get(reading.sensor_id)
                if node_id is None:
                    node_id = route(reading.sensor_id, None)
            else:
                node_id = route(reading.sensor_id, default_section)
            section_id = section_by_node.get(node_id)
            if section_id is None:
                # Same descriptive failure as the direct ingest path.
                raise RoutingError(f"unknown fog layer-1 node: {node_id}")
            per_section[section_id].append(reading)
        published: Dict[str, int] = {}
        topic_cache = self._frame_topic_cache
        for section_id, section_readings in per_section.items():
            topic = topic_cache.get((city_slug, section_id))
            if topic is None:
                topic = topic_cache[(city_slug, section_id)] = (
                    f"city/{city_slug}/{section_id}/frame"
                )
            columns = ReadingColumns.from_reading_list(section_readings)
            broker.publish(
                topic,
                columns.encode_frame(format=frame_format),
                timestamp=timestamp,
            )
            published[section_id] = len(section_readings)
        return published

    # ------------------------------------------------------------------ #
    # Sharded-runtime integration (supervisor side)
    # ------------------------------------------------------------------ #
    def receive_worker_batch(self, node_id: str, batch: ReadingBatch, now: float) -> int:
        """Absorb a fog L1 batch that was acquired in a worker process.

        The batch already went through the acquisition block in the worker
        (it is what the node's ``drain_for_upward`` returned there); this
        hop simulates and accounts the fog L1 → fog L2 transfer exactly
        like :meth:`~repro.core.movement.DataMovementScheduler.sync_fog1_to_fog2`
        does for a locally-drained node, then hands the batch to the parent
        fog L2 node.  Returns the bytes moved.
        """
        self.fog1_node(node_id)  # validates the id
        return self.scheduler.move_up_from_fog1(node_id, batch, now)

    def merge_edge_transfers(self, records: Iterable[Dict[str, object]]) -> int:
        """Replay worker-side sensors → fog L1 transfers into the accountant.

        Workers record the edge hop in their own accountant at ingest time;
        merging the records here keeps :meth:`traffic_report` identical to
        a single-process run.  Returns the number of records merged.
        """
        merged = 0
        record_transfer = self.simulator.accountant.record_transfer
        for record in records:
            record_transfer(
                timestamp=float(record["timestamp"]),
                source=str(record["source"]),
                target=str(record["target"]),
                target_layer=LayerName.FOG_1,
                size_bytes=int(record["size_bytes"]),
                message_count=int(record.get("message_count", 1)),
            )
            merged += 1
        return merged

    def merge_fog1_stats(self, stats_by_node: Dict[str, Dict[str, object]]) -> None:
        """Overlay worker-reported fog L1 storage statistics.

        In a sharded run the fog L1 stores live in the workers; the
        supervisor's local nodes never ingest.  ``storage_report`` prefers
        these reported statistics, so the merged report matches the
        single-process run byte for byte.
        """
        for node_id, stats in stats_by_node.items():
            self.fog1_node(node_id)  # validates the id
            self._fog1_stats_override[node_id] = dict(stats)

    # ------------------------------------------------------------------ #
    # Data movement & reporting
    # ------------------------------------------------------------------ #
    def synchronise(self, now: Optional[float] = None) -> Dict[str, Dict[str, int]]:
        """Move pending data fog L1 → fog L2 → cloud immediately."""
        return self.scheduler.full_sync(now)

    def traffic_report(self) -> Dict[str, int]:
        """Bytes received per layer (the paper's core comparison quantity)."""
        return self.simulator.accountant.layer_report()

    def storage_report(self) -> Dict[str, Dict[str, object]]:
        """Storage statistics per node, keyed by node id.

        Fog L1 entries prefer worker-reported statistics merged via
        :meth:`merge_fog1_stats` (sharded runs), falling back to the local
        node's own counters.
        """
        report: Dict[str, Dict[str, object]] = {}
        override = self._fog1_stats_override
        for fog1 in self.fog1_nodes():
            reported = override.get(fog1.node_id)
            report[fog1.node_id] = dict(reported) if reported is not None else fog1.stats()
        for fog2 in self.fog2_nodes():
            report[fog2.node_id] = fog2.stats()
        report[self.cloud.node_id] = self.cloud.stats()
        return report

    def summary(self) -> Dict[str, object]:
        """Compact deployment summary (Fig. 6 style): node counts per layer."""
        return {
            "city": self.city.name,
            "fog_layer_1_nodes": len(self._fog1),
            "fog_layer_2_nodes": len(self._fog2),
            "cloud_nodes": 1,
            "districts": self.city.district_count,
            "sections": self.city.section_count,
        }


def run_sharded(workers: int, workload=None, catalog: Optional[SensorCatalog] = None, **kwargs):
    """Run a seeded city workload sharded over *workers* ingest processes.

    The multi-process counterpart of driving :meth:`ingest_readings` +
    :meth:`synchronise` in one process: fog layer-1 sections are
    partitioned across worker processes (stable CRC-32), each worker runs
    acquisition + layer-1 aggregation for its sections, and a supervisor
    absorbs the acquired batches over binary-frame IPC and drives fog
    layer 2 → cloud exactly as the in-process path.  Output (Table-I
    traffic/storage reports and cloud contents) is byte-identical for any
    worker count.  See :func:`repro.runtime.supervisor.run_sharded` for the
    full parameter set; this is the architecture-level entry point.
    """
    from repro.runtime.supervisor import run_sharded as _run_sharded

    return _run_sharded(workers=workers, workload=workload, catalog=catalog, **kwargs)
