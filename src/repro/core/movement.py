"""Upward data-movement scheduling.

Section IV.A: "Data collected at fog layer 1 will be periodically moved
upwards to layer 2, and data collected at layer 2 ... will be combined and
periodically moved upwards to the cloud level. ... the frequency for the
periodical upwards data movements can be strategically decided in order to
accommodate it to the network traffic."

:class:`MovementPolicy` captures that business decision (how often each hop
moves data, and whether bulk transfers should be deferred to off-peak
hours); :class:`DataMovementScheduler` executes it over a topology, draining
each node's pending data, sending it over the simulated network and handing
it to the parent node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.common.errors import ConfigurationError
from repro.network.link import LinkProfile
from repro.network.simulator import NetworkSimulator, Transfer
from repro.sensors.readings import ReadingBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.architecture import F2CDataManagement


@dataclass(frozen=True)
class MovementPolicy:
    """When and how data moves upwards.

    Attributes
    ----------
    fog1_to_fog2_interval_s:
        Period of the fog L1 → fog L2 transfers.
    fog2_to_cloud_interval_s:
        Period of the fog L2 → cloud transfers.
    defer_to_offpeak:
        When true, bulk fog L2 → cloud transfers are delayed until the next
        off-peak hour of the backhaul link's diurnal profile.
    offpeak_hours:
        Hours of the day (0-23) considered off-peak when deferring; when
        ``None`` the link profile's three least-loaded hours are used.
    """

    fog1_to_fog2_interval_s: float = 900.0
    fog2_to_cloud_interval_s: float = 3600.0
    defer_to_offpeak: bool = False
    offpeak_hours: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.fog1_to_fog2_interval_s <= 0 or self.fog2_to_cloud_interval_s <= 0:
            raise ConfigurationError("movement intervals must be positive")
        if self.offpeak_hours is not None:
            for hour in self.offpeak_hours:
                if not 0 <= hour <= 23:
                    raise ConfigurationError("offpeak hours must be in [0, 23]")

    def next_transmission_time(self, now: float, profile: Optional[LinkProfile]) -> float:
        """Earliest time at or after *now* a bulk transfer may start.

        Without off-peak deferral this is simply *now*; with it, the transfer
        waits for the next configured (or least-loaded) hour of the day.
        """
        if not self.defer_to_offpeak:
            return now
        hours = self.offpeak_hours
        if hours is None:
            if profile is None:
                return now
            hours = tuple(profile.least_loaded_hours(3))
        current_hour = int(now // 3600) % 24
        if current_hour in hours:
            return now
        for offset in range(1, 25):
            candidate_hour = (current_hour + offset) % 24
            if candidate_hour in hours:
                # Start of that hour, on the correct day.
                day_start = (now // 86_400) * 86_400
                candidate = day_start + candidate_hour * 3600
                while candidate < now:
                    candidate += 86_400
                return candidate
        return now  # pragma: no cover - unreachable (some hour always matches)


class DataMovementScheduler:
    """Executes a :class:`MovementPolicy` over an F2C deployment."""

    def __init__(
        self,
        architecture: "F2CDataManagement",
        simulator: NetworkSimulator,
        policy: Optional[MovementPolicy] = None,
    ) -> None:
        self.architecture = architecture
        self.simulator = simulator
        self.policy = policy or MovementPolicy()
        self.transfers: List[Transfer] = []

    # ------------------------------------------------------------------ #
    # One-shot synchronisations
    # ------------------------------------------------------------------ #
    def sync_fog1_to_fog2(self, now: Optional[float] = None) -> Dict[str, int]:
        """Drain every fog L1 node and push its pending data to its parent.

        Returns bytes transferred per fog L1 node.
        """
        timestamp = now if now is not None else self.simulator.clock.now()
        moved: Dict[str, int] = {}
        for fog1 in self.architecture.fog1_nodes():
            batch = fog1.drain_for_upward()
            if not batch:
                continue
            moved[fog1.node_id] = self.move_up_from_fog1(fog1.node_id, batch, timestamp)
        self._commit_durable()
        return moved

    def move_up_from_fog1(self, node_id: str, batch: ReadingBatch, now: float) -> int:
        """Push one already-drained fog L1 batch to the node's parent.

        The single-node building block of :meth:`sync_fog1_to_fog2`, also
        used by the sharded supervisor to absorb batches that were acquired
        and drained in a worker process: the transfer is simulated and
        accounted exactly as the in-process hop.  Returns the bytes moved.
        """
        parent_id = self.architecture.parent_of(node_id)
        transfer = self._transfer(node_id, parent_id, batch, now)
        parent = self.architecture.fog2_node(parent_id)
        stored = parent.receive_from_child(node_id, batch, transfer.arrival_time)
        if parent.segment_log is not None and stored is not None:
            # Log what the tier stored (a layer-2 aggregator may have
            # reduced the batch); fsync'd by the sync-point commit.
            parent.segment_log.append(node_id, stored.columns, transfer.arrival_time)
        return batch.total_bytes

    def move_up_from_fog1_columns(self, node_id: str, columns, now: float) -> int:
        """Columns-native :meth:`move_up_from_fog1` (no batch wrapper).

        The sharded supervisor's absorb path: decoded worker columns go to
        the parent fog L2 node as-is — transfer simulation, accounting and
        storage all consume the columns directly, so no per-batch
        ``ReadingBatch`` object is created on the supervisor's hot loop.
        """
        parent_id = self.architecture.parent_of(node_id)
        transfer = self._record_transfer(
            node_id, parent_id, columns.category_counts(), columns.total_bytes, len(columns), now
        )
        parent = self.architecture.fog2_node(parent_id)
        stored = parent.receive_columns_from_child(node_id, columns, transfer.arrival_time)
        if parent.segment_log is not None and stored is not None:
            parent.segment_log.append(node_id, stored, transfer.arrival_time)
        return columns.total_bytes

    def sync_fog2_to_cloud(self, now: Optional[float] = None) -> Dict[str, int]:
        """Drain every fog L2 node and push its pending data to the cloud."""
        timestamp = now if now is not None else self.simulator.clock.now()
        moved: Dict[str, int] = {}
        cloud = self.architecture.cloud
        for fog2 in self.architecture.fog2_nodes():
            batch = fog2.drain_for_upward()
            if not batch:
                continue
            profile = self._backhaul_profile(fog2.node_id)
            departure = self.policy.next_transmission_time(timestamp, profile)
            transfer = self._transfer(fog2.node_id, cloud.node_id, batch, departure)
            cloud.receive_from_fog(fog2.node_id, batch, transfer.arrival_time)
            if cloud.segment_log is not None:
                cloud.segment_log.append(fog2.node_id, batch.columns, transfer.arrival_time)
            moved[fog2.node_id] = batch.total_bytes
        self._commit_durable()
        return moved

    def _commit_durable(self) -> None:
        """fsync every durable segment log — the sync-point boundary.

        Runs at the end of each one-shot synchronisation, so the durability
        contract ("at most the current round's un-fsync'd tail can be
        lost") holds for both hops on both the single-process and the
        sharded supervisor drive paths.
        """
        durable = self.architecture.durable
        if durable is not None:
            durable.commit()

    def full_sync(self, now: Optional[float] = None) -> Dict[str, Dict[str, int]]:
        """Fog L1 → fog L2 followed by fog L2 → cloud."""
        return {
            "fog1_to_fog2": self.sync_fog1_to_fog2(now),
            "fog2_to_cloud": self.sync_fog2_to_cloud(now),
        }

    # ------------------------------------------------------------------ #
    # Periodic scheduling over a horizon
    # ------------------------------------------------------------------ #
    def run_period(self, duration_s: float, start: Optional[float] = None) -> int:
        """Schedule periodic syncs for *duration_s* seconds and run them.

        Returns the number of sync rounds executed (both hops counted
        separately).
        """
        begin = start if start is not None else self.simulator.clock.now()
        rounds = 0

        time_cursor = begin + self.policy.fog1_to_fog2_interval_s
        while time_cursor <= begin + duration_s:
            self.simulator.schedule(time_cursor, lambda t=time_cursor: self.sync_fog1_to_fog2(t))
            time_cursor += self.policy.fog1_to_fog2_interval_s
            rounds += 1

        time_cursor = begin + self.policy.fog2_to_cloud_interval_s
        while time_cursor <= begin + duration_s:
            self.simulator.schedule(time_cursor, lambda t=time_cursor: self.sync_fog2_to_cloud(t))
            time_cursor += self.policy.fog2_to_cloud_interval_s
            rounds += 1

        self.simulator.run(until=begin + duration_s)
        return rounds

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _transfer(self, source: str, target: str, batch: ReadingBatch, departure: float) -> Transfer:
        return self._record_transfer(
            source, target, batch.categories(), batch.total_bytes, len(batch), departure
        )

    def _record_transfer(
        self,
        source: str,
        target: str,
        category_counts: Dict[str, int],
        size_bytes: int,
        message_count: int,
        departure: float,
    ) -> Transfer:
        dominant_category = max(category_counts, key=category_counts.get) if category_counts else None
        transfer = self.simulator.send(
            source=source,
            target=target,
            size_bytes=size_bytes,
            message_count=message_count,
            category=dominant_category,
            departure_time=departure,
        )
        self.transfers.append(transfer)
        return transfer

    def _backhaul_profile(self, fog2_node_id: str) -> Optional[LinkProfile]:
        try:
            link = self.simulator.topology.link(fog2_node_id, self.architecture.cloud.node_id)
        except Exception:  # RoutingError — no direct link configured
            return None
        return link.profile
