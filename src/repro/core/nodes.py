"""Nodes of the F2C hierarchy.

Each node owns:

* a :class:`~repro.storage.tiered.TieredStore` sized/retained according to
  its layer's role in the reversed memory hierarchy (Section IV.B);
* a computing capacity (abstract units) used by the placement engine;
* the SCC-DLC blocks the paper assigns to its layer — acquisition at fog
  layer 1, optional processing everywhere, preservation at the cloud.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aggregation.base import AggregationTechnique
from repro.common.errors import CapacityError, ConfigurationError
from repro.dlc.acquisition import AcquisitionBlock, DataFilteringPhase, DataQualityPhase, DataDescriptionPhase
from repro.dlc.model import BlockResult
from repro.dlc.preservation import PreservationBlock
from repro.dlc.processing import ProcessingBlock
from repro.network.topology import LayerName
from repro.sensors.catalog import SensorCatalog
from repro.sensors.readings import Reading, ReadingBatch
from repro.storage.archive import CloudArchive
from repro.storage.retention import KeepEverything, RetentionPolicy, TtlRetention
from repro.storage.tiered import TieredStore


class _BaseNode:
    """State and behaviour shared by every node of the hierarchy."""

    layer: LayerName

    def __init__(
        self,
        node_id: str,
        compute_capacity: float,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        if compute_capacity <= 0:
            raise ConfigurationError(f"{node_id}: compute capacity must be positive")
        self.node_id = node_id
        self.compute_capacity = compute_capacity
        self._compute_in_use = 0.0
        self.storage = TieredStore(name=node_id, retention=retention)
        self.processing = ProcessingBlock()
        #: Durable segment log backing this node's tier (set by the
        #: architecture on broad tiers when a durable_dir is configured).
        self.segment_log = None

    # -- computing capacity -------------------------------------------- #
    @property
    def compute_available(self) -> float:
        return self.compute_capacity - self._compute_in_use

    def allocate_compute(self, units: float) -> None:
        """Reserve *units* of computing capacity; raises when over capacity."""
        if units <= 0:
            raise ConfigurationError("compute units must be positive")
        if units > self.compute_available:
            raise CapacityError(
                f"{self.node_id}: requested {units} compute units, only "
                f"{self.compute_available} available"
            )
        self._compute_in_use += units

    def release_compute(self, units: float) -> None:
        self._compute_in_use = max(0.0, self._compute_in_use - units)

    # -- processing ------------------------------------------------------ #
    def process(self, batch: ReadingBatch, now: float) -> BlockResult:
        """Run the data-processing block locally over *batch*."""
        _, result = self.processing.run(batch, now)
        return result

    # -- storage queries ------------------------------------------------- #
    def latest(self, sensor_id: str) -> Reading:
        return self.storage.latest(sensor_id)

    def has_series(self, sensor_id: str) -> bool:
        return self.storage.has_series(sensor_id)

    def query_window(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        category: Optional[str] = None,
        sensor_id: Optional[str] = None,
        fog_node_id: Optional[str] = None,
    ) -> ReadingBatch:
        return self.storage.query_window(
            since=since,
            until=until,
            category=category,
            sensor_id=sensor_id,
            fog_node_id=fog_node_id,
        )

    def stats(self) -> Dict[str, object]:
        data = self.storage.stats()
        data.update(
            {
                "node_id": self.node_id,
                "layer": self.layer.value,
                "compute_capacity": self.compute_capacity,
                "compute_available": self.compute_available,
            }
        )
        return data

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(id={self.node_id!r})"


class FogNodeLevel1(_BaseNode):
    """A fog layer-1 node: covers one city section, performs data acquisition.

    The acquisition block (collection → filtering/aggregation → quality →
    description) runs here on every ingested batch; readings that survive are
    stored locally (the real-time window) and queued for upward movement.
    """

    layer = LayerName.FOG_1

    def __init__(
        self,
        node_id: str,
        section_id: str,
        compute_capacity: float = 10.0,
        retention: Optional[RetentionPolicy] = None,
        aggregator: Optional[AggregationTechnique] = None,
        catalog: Optional[SensorCatalog] = None,
        city_name: str = "barcelona",
    ) -> None:
        super().__init__(
            node_id=node_id,
            compute_capacity=compute_capacity,
            retention=retention if retention is not None else TtlRetention(max_age_seconds=6 * 3600.0),
        )
        self.section_id = section_id
        self.acquisition = AcquisitionBlock(
            filtering=DataFilteringPhase(aggregator=aggregator),
            quality=DataQualityPhase(catalog=catalog),
            description=DataDescriptionPhase(
                city_name=city_name,
                static_tags={"section": section_id},
                fog_node_id=node_id,
            ),
        )
        self.last_acquisition_result: Optional[BlockResult] = None
        # Cumulative count of readings the acquisition block refused to
        # admit (quality rejections, aggregation reductions) — the only
        # sanctioned way a reading vanishes between "offered" and
        # "ingested" on a lossless transport, so conservation audits need
        # the running total, not just the last batch's BlockResult.
        self.rejected_readings = 0

    def ingest(self, batch: ReadingBatch, now: float) -> ReadingBatch:
        """Run the acquisition block over *batch* and store the survivors.

        Returns the acquired batch (after filtering, quality and description)
        — the data that is now available locally for real-time consumers and
        queued for upward movement.
        """
        acquired, result = self.acquisition.run(batch, now)
        self.last_acquisition_result = result
        self.rejected_readings += max(0, len(batch) - len(acquired))
        self.storage.ingest_batch(acquired, mark_for_upward=True)
        return acquired

    def stats(self) -> Dict[str, object]:
        data = super().stats()
        data["rejected_readings"] = self.rejected_readings
        return data

    def drain_for_upward(self) -> ReadingBatch:
        """Data not yet moved to the parent fog layer-2 node."""
        return self.storage.drain_pending_upward()

    def enforce_retention(self, now: float) -> int:
        return self.storage.enforce_retention(now)


class FogNodeLevel2(_BaseNode):
    """A fog layer-2 node: covers one district, combines its children's data.

    Holds "a set of less recent data but from a broader area, comprising the
    combination of the respective fog nodes' areas at layer 1"
    (Section IV.B), and can run heavier processing than layer 1.
    """

    layer = LayerName.FOG_2

    def __init__(
        self,
        node_id: str,
        district_id: str,
        compute_capacity: float = 100.0,
        retention: Optional[RetentionPolicy] = None,
        aggregator: Optional[AggregationTechnique] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            compute_capacity=compute_capacity,
            retention=retention if retention is not None else TtlRetention(max_age_seconds=72 * 3600.0),
        )
        self.district_id = district_id
        self.aggregator = aggregator
        self.children: List[str] = []

    def register_child(self, child_node_id: str) -> None:
        if child_node_id not in self.children:
            self.children.append(child_node_id)

    def receive_from_child(self, child_node_id: str, batch: ReadingBatch, now: float) -> ReadingBatch:
        """Ingest a batch pushed up by a fog layer-1 child.

        An optional layer-2 aggregator (e.g. averaging over the broader area)
        can reduce the batch further before it is stored and queued for the
        cloud.
        """
        if child_node_id not in self.children:
            self.register_child(child_node_id)
        reduced = batch
        if self.aggregator is not None:
            reduced = self.aggregator.apply(batch).batch
        self.storage.ingest_batch(reduced, mark_for_upward=True)
        return reduced

    def receive_columns_from_child(self, child_node_id: str, columns, now: float):
        """Columns-native :meth:`receive_from_child` (the supervisor absorb path).

        Storage and the pending-upward queue consume the columns directly;
        a batch wrapper is created only when a layer-2 aggregator is
        configured (aggregation techniques operate on batches).  Returns
        the columns that were stored (the aggregator-reduced ones when one
        is configured) so the caller can log exactly what the tier holds.
        """
        if child_node_id not in self.children:
            self.register_child(child_node_id)
        if self.aggregator is not None:
            reduced = self.aggregator.apply(ReadingBatch.from_columns(columns)).batch
            self.storage.ingest_batch(reduced, mark_for_upward=True)
            return reduced.columns
        self.storage.ingest_columns(columns, mark_for_upward=True)
        return columns

    def drain_for_upward(self) -> ReadingBatch:
        return self.storage.drain_pending_upward()

    def enforce_retention(self, now: float) -> int:
        evicted = self.storage.enforce_retention(now)
        if self.segment_log is not None:
            # Durable tiers age out whole segments: one index scan over
            # record headers (O(1) per segment), never per-row surgery.
            max_age = getattr(self.storage.retention, "max_age_seconds", None)
            if max_age is not None:
                self.segment_log.drop_older_than(now - max_age)
        return evicted


class CloudNode(_BaseNode):
    """The cloud layer: permanent preservation and deep processing.

    Ingested data goes through the preservation block (classification →
    archive → dissemination) and is also kept in a queryable store so batch
    analytics can run over the full historical data set.
    """

    layer = LayerName.CLOUD

    def __init__(
        self,
        node_id: str = "cloud",
        compute_capacity: float = 1_000_000.0,
        archive: Optional[CloudArchive] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            compute_capacity=compute_capacity,
            retention=KeepEverything(),
        )
        self.archive = archive if archive is not None else CloudArchive(name=f"{node_id}-archive")
        self.preservation = PreservationBlock(archive=self.archive)
        self.last_preservation_result: Optional[BlockResult] = None

    def receive_from_fog(self, fog_node_id: str, batch: ReadingBatch, now: float) -> BlockResult:
        """Ingest a batch pushed up by a fog layer-2 node and preserve it."""
        self.storage.ingest_batch(batch, mark_for_upward=False)
        # Lineage records which fog node delivered the data.
        self.preservation.archive_phase.lineage = (fog_node_id,)
        _, result = self.preservation.run(batch, now)
        self.last_preservation_result = result
        return result

    def read_dataset(self, dataset: str, consumer: str = "public") -> ReadingBatch:
        """Dissemination endpoint (open-data access)."""
        return self.archive.read(dataset, consumer=consumer)
