"""The centralized cloud baseline (Section III, Fig. 3).

In the traditional architecture every sensor reading travels over the
wide-area network straight to the central cloud data centre (the Sentilo
deployment the paper compares against).  There is no fog-side filtering or
aggregation: whatever the sensors produce is what the backhaul carries and
what the cloud ingests.  Real-time consumers at the edge must then read the
just-collected data *back* from the cloud, paying the round trip the paper
highlights ("two times data transfer through the same path").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.city.model import City
from repro.city.barcelona import BARCELONA
from repro.common.errors import ConfigurationError
from repro.dlc.preservation import PreservationBlock
from repro.network.link import Link
from repro.network.simulator import NetworkSimulator, Transfer
from repro.network.topology import LayerName, NetworkTopology
from repro.network.traffic import TrafficAccountant
from repro.sensors.catalog import SensorCatalog
from repro.sensors.readings import Reading, ReadingBatch
from repro.sensors.sentilo import SentiloPlatform
from repro.storage.archive import CloudArchive

CLOUD_NODE_ID = "cloud"
EDGE_GATEWAY_ID = "edge-gateway"

#: Default characteristics of the direct sensor → cloud path (a metropolitan
#: access network plus a wide-area hop), used when no topology is supplied.
DEFAULT_UPLINK = {"latency_s": 0.060, "bandwidth_bps": 1_250_000_000}


def build_centralized_topology(uplink: Optional[Dict[str, float]] = None) -> NetworkTopology:
    """A two-node topology: one edge gateway aggregating all sensors, one cloud."""
    parameters = dict(DEFAULT_UPLINK)
    if uplink:
        parameters.update(uplink)
    topology = NetworkTopology()
    topology.add_node(EDGE_GATEWAY_ID, LayerName.EDGE)
    topology.add_node(CLOUD_NODE_ID, LayerName.CLOUD)
    topology.connect(
        EDGE_GATEWAY_ID,
        CLOUD_NODE_ID,
        latency_s=parameters["latency_s"],
        bandwidth_bps=parameters["bandwidth_bps"],
    )
    return topology


class CentralizedCloudDataManagement:
    """The traditional centralized architecture used as the paper's baseline."""

    def __init__(
        self,
        city: Optional[City] = None,
        catalog: Optional[SensorCatalog] = None,
        topology: Optional[NetworkTopology] = None,
    ) -> None:
        self.city = city if city is not None else BARCELONA
        self.catalog = catalog
        self.topology = topology if topology is not None else build_centralized_topology()
        if not self.topology.has_node(CLOUD_NODE_ID):
            raise ConfigurationError("centralized topology must contain a 'cloud' node")
        self.simulator = NetworkSimulator(self.topology, accountant=TrafficAccountant())
        self.platform = SentiloPlatform(catalog=catalog)
        self.archive = CloudArchive(name="centralized-archive")
        self.preservation = PreservationBlock(archive=self.archive)
        self.transfers: List[Transfer] = []

    # ------------------------------------------------------------------ #
    # Ingestion: every reading crosses the WAN to the cloud immediately
    # ------------------------------------------------------------------ #
    def ingest_readings(self, readings: Iterable[Reading], now: Optional[float] = None) -> int:
        """Send readings to the cloud and ingest them into the platform."""
        timestamp = now if now is not None else self.simulator.clock.now()
        batch = ReadingBatch(readings)
        if not batch:
            return 0
        transfer = self.simulator.send(
            source=EDGE_GATEWAY_ID,
            target=CLOUD_NODE_ID,
            size_bytes=batch.total_bytes,
            message_count=len(batch),
            departure_time=timestamp,
        )
        self.transfers.append(transfer)
        self.platform.publish_batch(batch)
        self.preservation.run(batch, transfer.arrival_time)
        return len(batch)

    # ------------------------------------------------------------------ #
    # Real-time access: edge services read just-collected data back down
    # ------------------------------------------------------------------ #
    def realtime_access_latency(self, response_bytes: int, request_bytes: int = 256) -> float:
        """Latency an edge consumer pays to read just-collected data.

        The data has already been uploaded; the consumer still pays a full
        request/response round trip to the cloud.
        """
        return self.simulator.round_trip_time(
            EDGE_GATEWAY_ID, CLOUD_NODE_ID, request_bytes, response_bytes
        )

    def end_to_end_realtime_latency(self, reading_bytes: int, response_bytes: int) -> float:
        """Latency from a reading leaving the sensor to an edge consumer seeing it.

        This is the "two times data transfer through the same path" cost:
        upload of the reading plus the read-back round trip.
        """
        uplink: Link = self.topology.link(EDGE_GATEWAY_ID, CLOUD_NODE_ID)
        upload = uplink.transfer_time(reading_bytes)
        return upload + self.realtime_access_latency(response_bytes)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def traffic_report(self) -> Dict[str, int]:
        return self.simulator.accountant.layer_report()

    def cloud_ingested_bytes(self) -> int:
        return self.platform.ingested_bytes()

    def cloud_ingested_bytes_by_category(self) -> Dict[str, int]:
        return self.platform.ingested_bytes_by_category()
