"""Service placement and the data-access cost model (Section IV.C).

The paper's placement rule: critical real-time services run at fog layer 1;
deep-computing applications over large historical data sets run at the
cloud; everything else runs at "the lowest fog layer that provides the
required computing capabilities and the lowest fog layer that contains the
required data set".  When the required data is not present at the local fog
node, it may be fetched from a neighbour node at the same layer or from a
node at a higher layer, "solved using some sort of cost model to estimate
the effects of both cases and proceed according to the lowest cost".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.city.services import ServiceRequirements
from repro.common.errors import PlacementError
from repro.network.topology import LayerName

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from repro.core.architecture import F2CDataManagement


@dataclass(frozen=True)
class PlacementDecision:
    """Where a service should run and why."""

    service_name: str
    node_id: str
    layer: LayerName
    estimated_access_latency_s: float
    reason: str

    @property
    def is_fog(self) -> bool:
        return self.layer in (LayerName.FOG_1, LayerName.FOG_2)


@dataclass(frozen=True)
class DataAccessOption:
    """One way of obtaining a required data set from a given execution node."""

    execution_node: str
    data_node: str
    transfer_latency_s: float
    transfer_bytes: int

    @property
    def cost(self) -> float:
        """The cost model: latency is the dominant term for interactive services."""
        return self.transfer_latency_s


class ServicePlacementEngine:
    """Implements the paper's layer-selection rule over a deployed architecture."""

    #: Typical response payload used when estimating access latencies.
    DEFAULT_RESPONSE_BYTES = 4_096

    def __init__(self, architecture: "F2CDataManagement") -> None:
        self.architecture = architecture

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def place(
        self,
        service_name: str,
        requirements: ServiceRequirements,
        home_section: str,
        response_bytes: int = DEFAULT_RESPONSE_BYTES,
    ) -> PlacementDecision:
        """Choose the execution layer for a service anchored at *home_section*.

        Candidate layers are walked from the lowest upwards; the first layer
        that (a) holds the data scope the service needs, (b) has the
        computing capacity, and (c) meets the latency bound (when one is
        set), wins.  If no layer qualifies, a :class:`PlacementError` is
        raised describing what failed.
        """
        architecture = self.architecture
        fog1 = architecture.fog1_for_section(home_section)
        fog2 = architecture.fog2_node(architecture.parent_of(fog1.node_id))
        cloud = architecture.cloud
        topology = architecture.topology

        candidates = []
        # Layer eligibility by data scope: a section-scoped data set exists at
        # every layer; a district scope needs fog L2 or above; city scope only
        # exists in full at the cloud.
        if requirements.data_scope == "section":
            candidates = [fog1, fog2, cloud]
        elif requirements.data_scope == "district":
            candidates = [fog2, cloud]
        else:
            candidates = [cloud]

        failures: List[str] = []
        for node in candidates:
            if node.compute_available < requirements.compute_units:
                failures.append(f"{node.node_id}: insufficient compute")
                continue
            if node is fog1:
                access_latency = 0.0  # data is local to the executing node
            else:
                access_latency = topology.transfer_time(
                    node.node_id, fog1.node_id, response_bytes
                )
            if requirements.latency_bound_s is not None and access_latency > requirements.latency_bound_s:
                failures.append(
                    f"{node.node_id}: access latency {access_latency:.4f}s exceeds bound "
                    f"{requirements.latency_bound_s:.4f}s"
                )
                continue
            node.allocate_compute(requirements.compute_units)
            return PlacementDecision(
                service_name=service_name,
                node_id=node.node_id,
                layer=node.layer,
                estimated_access_latency_s=access_latency,
                reason=(
                    "lowest layer satisfying data scope "
                    f"'{requirements.data_scope}', compute and latency requirements"
                ),
            )
        raise PlacementError(
            f"no layer can host service {service_name!r}: " + "; ".join(failures)
        )

    # ------------------------------------------------------------------ #
    # Data-access cost model
    # ------------------------------------------------------------------ #
    def data_access_options(
        self,
        execution_node_id: str,
        data_bytes: int,
        candidate_data_nodes: Optional[List[str]] = None,
    ) -> List[DataAccessOption]:
        """Enumerate ways of fetching *data_bytes* to *execution_node_id*.

        Candidates default to: the executing node itself (zero cost when it
        already holds the data), its neighbour fog nodes at the same layer,
        and its ancestors up to the cloud — the alternatives Section IV.C
        discusses.
        """
        topology = self.architecture.topology
        if candidate_data_nodes is None:
            candidate_data_nodes = [execution_node_id]
            candidate_data_nodes.extend(topology.siblings_of(execution_node_id))
            candidate_data_nodes.extend(topology.ancestors_of(execution_node_id))
        options = []
        for data_node in candidate_data_nodes:
            if data_node == execution_node_id:
                latency = 0.0
            else:
                latency = topology.transfer_time(data_node, execution_node_id, data_bytes)
            options.append(
                DataAccessOption(
                    execution_node=execution_node_id,
                    data_node=data_node,
                    transfer_latency_s=latency,
                    transfer_bytes=data_bytes if data_node != execution_node_id else 0,
                )
            )
        return options

    def cheapest_data_access(
        self,
        execution_node_id: str,
        data_bytes: int,
        nodes_holding_data: List[str],
    ) -> DataAccessOption:
        """Pick the lowest-cost source among the nodes that actually hold the data."""
        if not nodes_holding_data:
            raise PlacementError("no node holds the required data")
        options = self.data_access_options(
            execution_node_id, data_bytes, candidate_data_nodes=nodes_holding_data
        )
        return min(options, key=lambda option: option.cost)

    def compare_layers_latency(
        self,
        home_section: str,
        response_bytes: int = DEFAULT_RESPONSE_BYTES,
    ) -> Dict[str, float]:
        """Access latency from a section's fog L1 node to each layer's data.

        Used by the latency benchmarks: the F2C claim is that the fog L1
        figure is dramatically smaller than the cloud figure.
        """
        architecture = self.architecture
        topology = architecture.topology
        fog1 = architecture.fog1_for_section(home_section)
        fog2_id = architecture.parent_of(fog1.node_id)
        return {
            LayerName.FOG_1.value: 0.0,
            LayerName.FOG_2.value: topology.transfer_time(fog2_id, fog1.node_id, response_bytes),
            LayerName.CLOUD.value: topology.transfer_time(
                architecture.cloud.node_id, fog1.node_id, response_bytes
            ),
        }
