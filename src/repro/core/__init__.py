"""The paper's primary contribution: F2C data management for smart cities.

This package maps the SCC-DLC model onto the hierarchical fog-to-cloud
resource-management architecture (Section IV):

* :mod:`repro.core.nodes` — fog layer-1, fog layer-2 and cloud nodes, each
  owning local storage, capacity and the DLC blocks the paper assigns to its
  layer.
* :mod:`repro.core.architecture` — :class:`F2CDataManagement`, which wires
  the city, catalog, topology and nodes together: sensor ingestion at fog
  layer 1, periodic upward data movement, per-layer queries.
* :mod:`repro.core.movement` — the upward data-movement scheduler (periodic
  transfers, off-peak transmission shaping).
* :mod:`repro.core.placement` — the service-placement cost model ("run at
  the lowest layer with the data and the capacity").
* :mod:`repro.core.baseline` — the centralized cloud architecture the paper
  compares against (all raw data travels to the cloud).
* :mod:`repro.core.estimation` — the analytic traffic estimator that
  reproduces Table I and Fig. 7 from catalog parameters.
"""

from repro.core.architecture import F2CDataManagement
from repro.core.baseline import CentralizedCloudDataManagement
from repro.core.comparison import ComparisonReport, analytic_comparison, measured_comparison
from repro.core.estimation import (
    CategoryTraffic,
    Fig7Series,
    Table1Row,
    TrafficEstimator,
)
from repro.core.faults import FailureInjector
from repro.core.movement import DataMovementScheduler, MovementPolicy
from repro.core.nodes import CloudNode, FogNodeLevel1, FogNodeLevel2
from repro.core.placement import PlacementDecision, ServicePlacementEngine

__all__ = [
    "CategoryTraffic",
    "CentralizedCloudDataManagement",
    "CloudNode",
    "ComparisonReport",
    "DataMovementScheduler",
    "F2CDataManagement",
    "FailureInjector",
    "Fig7Series",
    "FogNodeLevel1",
    "FogNodeLevel2",
    "MovementPolicy",
    "PlacementDecision",
    "ServicePlacementEngine",
    "Table1Row",
    "TrafficEstimator",
    "analytic_comparison",
    "measured_comparison",
]
