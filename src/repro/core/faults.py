"""Failure injection and failover for the F2C hierarchy.

Section IV.D claims the distributed model improves fault tolerance: "by
reducing the data transmission length, the security risks and the
probability of communication failure are reduced as well".  The paper does
not evaluate this claim; this module makes it testable.

:class:`FailureInjector` wraps a deployed
:class:`~repro.core.architecture.F2CDataManagement` and lets experiments

* fail and recover fog layer-1 / fog layer-2 nodes and the backhaul links,
* re-route a failed fog node's sections to a healthy sibling (failover),
* account for the data at risk (readings acquired but not yet propagated
  upwards when the node failed), and
* measure service availability: which sections still have a live fog node
  serving real-time data, and whether the cloud keeps receiving data.

The centralized baseline's failure mode — a single backhaul/link or cloud
outage making *every* section's just-collected data unreachable — is modelled
by :func:`centralized_outage_impact` for the comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import ConfigurationError, RoutingError
from repro.core.architecture import F2CDataManagement
from repro.core.nodes import FogNodeLevel1
from repro.sensors.readings import Reading, ReadingBatch


@dataclass
class FailureState:
    """Currently injected failures."""

    failed_nodes: Set[str] = field(default_factory=set)
    failed_links: Set[tuple] = field(default_factory=set)

    def is_node_failed(self, node_id: str) -> bool:
        return node_id in self.failed_nodes

    def is_link_failed(self, source: str, target: str) -> bool:
        return (source, target) in self.failed_links or (target, source) in self.failed_links


@dataclass(frozen=True)
class FailoverRecord:
    """A section re-homed from a failed fog node to a healthy sibling."""

    section_id: str
    failed_node: str
    replacement_node: str
    readings_at_risk: int
    bytes_at_risk: int


@dataclass
class AvailabilityReport:
    """Service availability under the current failure state."""

    total_sections: int
    served_sections: int
    failed_fog1_nodes: int
    failed_fog2_nodes: int
    cloud_reachable_districts: int
    total_districts: int

    @property
    def section_availability(self) -> float:
        if self.total_sections == 0:
            return 0.0
        return self.served_sections / self.total_sections

    @property
    def cloud_path_availability(self) -> float:
        if self.total_districts == 0:
            return 0.0
        return self.cloud_reachable_districts / self.total_districts

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (surfaced through ``F2CClient.health()``)."""
        return {
            "total_sections": self.total_sections,
            "served_sections": self.served_sections,
            "failed_fog1_nodes": self.failed_fog1_nodes,
            "failed_fog2_nodes": self.failed_fog2_nodes,
            "cloud_reachable_districts": self.cloud_reachable_districts,
            "total_districts": self.total_districts,
            "section_availability": self.section_availability,
            "cloud_path_availability": self.cloud_path_availability,
        }


class FailureInjector:
    """Injects node/link failures into an F2C deployment and drives failover.

    Accepts the legacy :class:`F2CDataManagement` directly, or any facade
    that wraps one and exposes it as a ``system`` attribute
    (:class:`~repro.api.client.F2CClient`,
    :class:`~repro.api.pipeline.Pipeline` results, …) — the injector always
    operates on the underlying architecture.
    """

    def __init__(self, architecture) -> None:
        unwrapped = getattr(architecture, "system", architecture)
        if not isinstance(unwrapped, F2CDataManagement):
            raise ConfigurationError(
                "FailureInjector needs an F2CDataManagement or a facade exposing "
                f"one via .system, got {type(architecture).__name__}"
            )
        self.architecture: F2CDataManagement = unwrapped
        self.state = FailureState()
        self.failovers: List[FailoverRecord] = []
        #: section -> node currently serving it (after any failover).
        self._serving_node: Dict[str, str] = {
            fog1.section_id: fog1.node_id for fog1 in unwrapped.fog1_nodes()
        }

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def fail_node(self, node_id: str) -> None:
        """Mark a fog node as failed (the cloud is assumed highly available)."""
        if node_id == self.architecture.cloud.node_id:
            raise ConfigurationError(
                "the cloud node is modelled as highly available; fail the backhaul "
                "links instead to model a cloud outage"
            )
        self.architecture.node_by_id(node_id)  # validates the id
        self.state.failed_nodes.add(node_id)

    def recover_node(self, node_id: str) -> None:
        self.state.failed_nodes.discard(node_id)

    def fail_link(self, source: str, target: str) -> None:
        self.architecture.topology.link(source, target)  # validates the link
        self.state.failed_links.add((source, target))

    def recover_link(self, source: str, target: str) -> None:
        self.state.failed_links.discard((source, target))
        self.state.failed_links.discard((target, source))

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def failover_node(self, node_id: str) -> List[FailoverRecord]:
        """Re-home a failed fog L1 node's sections onto a healthy sibling.

        The replacement is the first healthy fog L1 node under the same fog
        layer-2 parent (a neighbouring section of the same district), which is
        the locality the paper's cost model prefers.  Data the failed node had
        acquired but not yet pushed upwards is counted as at risk (it survives
        only if the node comes back).
        """
        if node_id not in self.state.failed_nodes:
            raise ConfigurationError(f"node {node_id} is not failed; nothing to fail over")
        failed = self.architecture.fog1_node(node_id)
        siblings = self.architecture.topology.siblings_of(node_id)
        replacement = next(
            (sibling for sibling in siblings if not self.state.is_node_failed(sibling)), None
        )
        if replacement is None:
            raise RoutingError(
                f"no healthy sibling fog node available to take over {node_id}"
            )
        record = FailoverRecord(
            section_id=failed.section_id,
            failed_node=node_id,
            replacement_node=replacement,
            readings_at_risk=failed.storage.pending_upward_count,
            bytes_at_risk=failed.storage.pending_upward_bytes,
        )
        self._serving_node[failed.section_id] = replacement
        self.failovers.append(record)
        return [record]

    def isolate_node_store(self, node_id: str) -> None:
        """Mark a fog L1 node's local store non-authoritative for readers.

        A failed node's data plane is unreachable even though the simulated
        store object still holds its rows.  Overlaying the node's own
        statistics (via ``merge_fog1_stats``) preserves the storage report
        while flipping ``fog1_store_is_authoritative`` to ``False``, so live
        queries for its area fall through to fog layer 2 / cloud instead of
        silently reading a store the outage made unreachable.
        """
        node = self.architecture.fog1_node(node_id)
        self.architecture.merge_fog1_stats({node_id: node.stats()})

    def serving_node_for(self, section_id: str) -> Optional[str]:
        """The fog node currently serving *section_id*, or ``None`` if dark."""
        node_id = self._serving_node.get(section_id)
        if node_id is None or self.state.is_node_failed(node_id):
            return None
        return node_id

    # ------------------------------------------------------------------ #
    # Routing-aware ingestion
    # ------------------------------------------------------------------ #
    def ingest_with_failover(
        self,
        readings: Iterable[Reading],
        section_id: str,
        now: float,
    ) -> Optional[str]:
        """Ingest readings for a section, honouring failures and failovers.

        Returns the node id that acquired the data, or ``None`` when the
        section currently has no serving node (data is lost at the edge, the
        worst case the F2C model tries to avoid).
        """
        node_id = self.serving_node_for(section_id)
        if node_id is None:
            return None
        node: FogNodeLevel1 = self.architecture.fog1_node(node_id)
        batch = ReadingBatch(readings)
        self.architecture.simulator.accountant.record_transfer(
            timestamp=now,
            source=f"sensors/{section_id}",
            target=node_id,
            target_layer=node.layer,
            size_bytes=batch.total_bytes,
            message_count=len(batch),
        )
        node.ingest(batch, now)
        return node_id

    # ------------------------------------------------------------------ #
    # Availability accounting
    # ------------------------------------------------------------------ #
    def availability(self) -> AvailabilityReport:
        architecture = self.architecture
        served = sum(
            1 for section in architecture.city.sections if self.serving_node_for(section.section_id)
        )
        failed_fog1 = sum(
            1 for node in architecture.fog1_nodes() if self.state.is_node_failed(node.node_id)
        )
        failed_fog2 = sum(
            1 for node in architecture.fog2_nodes() if self.state.is_node_failed(node.node_id)
        )
        cloud_id = architecture.cloud.node_id
        reachable_districts = 0
        for fog2 in architecture.fog2_nodes():
            if self.state.is_node_failed(fog2.node_id):
                continue
            if self.state.is_link_failed(fog2.node_id, cloud_id):
                continue
            reachable_districts += 1
        return AvailabilityReport(
            total_sections=architecture.city.section_count,
            served_sections=served,
            failed_fog1_nodes=failed_fog1,
            failed_fog2_nodes=failed_fog2,
            cloud_reachable_districts=reachable_districts,
            total_districts=architecture.city.district_count,
        )


def centralized_outage_impact(total_sections: int, backhaul_down: bool) -> float:
    """Fraction of sections whose just-collected data is unreachable under the
    centralized model.

    In the centralized architecture every section's data lives only behind
    the single backhaul/cloud path, so a backhaul outage makes all of it
    unreachable; with the path up, none of it is (0.0).
    """
    if total_sections <= 0:
        raise ConfigurationError("total_sections must be positive")
    return 1.0 if backhaul_down else 0.0
