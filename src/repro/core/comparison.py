"""Side-by-side comparison of the F2C model against the centralized baseline.

Benchmarks and examples need the same report repeatedly: for a given
workload, how many bytes reach each layer under each model, what latency a
real-time consumer pays, and what fraction of the backhaul the F2C
optimisations remove.  This module centralises that logic so every harness
prints consistent numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.units import format_bytes
from repro.core.estimation import CitywideEstimate, TrafficEstimator
from repro.sensors.catalog import SensorCatalog, SensorCategory


@dataclass
class ModelTraffic:
    """Traffic observed (or estimated) under one architecture."""

    name: str
    bytes_into_fog1: int = 0
    bytes_into_fog2: int = 0
    bytes_into_cloud: int = 0
    realtime_access_latency_s: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.name,
            "fog_layer_1": self.bytes_into_fog1,
            "fog_layer_2": self.bytes_into_fog2,
            "cloud": self.bytes_into_cloud,
            "realtime_access_latency_s": self.realtime_access_latency_s,
        }


@dataclass
class ComparisonReport:
    """F2C vs centralized traffic and latency for one workload."""

    workload: str
    centralized: ModelTraffic
    f2c: ModelTraffic
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def backhaul_reduction(self) -> float:
        """Fraction of cloud-bound bytes removed by the F2C model."""
        if self.centralized.bytes_into_cloud == 0:
            return 0.0
        return 1.0 - self.f2c.bytes_into_cloud / self.centralized.bytes_into_cloud

    @property
    def latency_speedup(self) -> Optional[float]:
        """How many times faster real-time access is under F2C."""
        if (
            self.centralized.realtime_access_latency_s is None
            or self.f2c.realtime_access_latency_s is None
            or self.f2c.realtime_access_latency_s == 0
        ):
            return None
        return self.centralized.realtime_access_latency_s / self.f2c.realtime_access_latency_s

    def format(self) -> str:
        lines = [
            f"workload: {self.workload}",
            f"  centralized cloud : cloud receives {format_bytes(self.centralized.bytes_into_cloud)}",
            (
                "  fog-to-cloud (F2C): "
                f"fog L1 {format_bytes(self.f2c.bytes_into_fog1)}, "
                f"fog L2 {format_bytes(self.f2c.bytes_into_fog2)}, "
                f"cloud {format_bytes(self.f2c.bytes_into_cloud)}"
            ),
            f"  backhaul reduction: {self.backhaul_reduction:.1%}",
        ]
        if self.latency_speedup is not None:
            lines.append(
                "  real-time access  : "
                f"{self.centralized.realtime_access_latency_s * 1e3:.2f} ms (centralized) vs "
                f"{self.f2c.realtime_access_latency_s * 1e3:.2f} ms (F2C), "
                f"{self.latency_speedup:.0f}x faster"
            )
        for key, value in self.notes.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def analytic_comparison(
    catalog: SensorCatalog,
    estimator: Optional[TrafficEstimator] = None,
    apply_compression: bool = True,
) -> ComparisonReport:
    """Build the paper's headline comparison from the analytic estimator.

    The centralized model delivers the whole daily volume to the cloud; the
    F2C model delivers it to fog layer 1, applies redundancy elimination
    before fog layer 2, and optionally compression before the cloud.
    """
    estimator = estimator or TrafficEstimator(catalog)
    totals: CitywideEstimate = estimator.citywide()
    cloud_bound = totals.f2c_cloud_per_day_compressed if apply_compression else totals.f2c_cloud_per_day
    report = ComparisonReport(
        workload="one day of the future Barcelona sensor deployment (Table I)",
        centralized=ModelTraffic(
            name="centralized cloud",
            bytes_into_fog1=0,
            bytes_into_fog2=0,
            bytes_into_cloud=totals.cloud_model_per_day,
        ),
        f2c=ModelTraffic(
            name="fog-to-cloud",
            bytes_into_fog1=totals.f2c_fog1_per_day,
            bytes_into_fog2=totals.f2c_fog2_per_day,
            bytes_into_cloud=cloud_bound,
        ),
        notes={
            "redundancy elimination only": format_bytes(totals.f2c_cloud_per_day),
            "per-category reductions": {
                category.value: f"{traffic.redundancy_rate:.0%}"
                for category, traffic in totals.per_category.items()
            },
        },
    )
    return report


def measured_comparison(
    workload: str,
    f2c_traffic_report: Dict[str, int],
    centralized_traffic_report: Dict[str, int],
    f2c_latency_s: Optional[float] = None,
    centralized_latency_s: Optional[float] = None,
) -> ComparisonReport:
    """Build a comparison from two measured traffic reports (simulation runs)."""
    return ComparisonReport(
        workload=workload,
        centralized=ModelTraffic(
            name="centralized cloud",
            bytes_into_cloud=centralized_traffic_report.get("cloud", 0),
            realtime_access_latency_s=centralized_latency_s,
        ),
        f2c=ModelTraffic(
            name="fog-to-cloud",
            bytes_into_fog1=f2c_traffic_report.get("fog_layer_1", 0),
            bytes_into_fog2=f2c_traffic_report.get("fog_layer_2", 0),
            bytes_into_cloud=f2c_traffic_report.get("cloud", 0),
            realtime_access_latency_s=f2c_latency_s,
        ),
    )
