"""Bulk synthetic reading-stream generation.

The full Barcelona catalog describes just over a million sensors; generating
every reading of a simulated day object-by-object would be needlessly slow
for tests.  The :class:`ReadingGenerator` produces representative *sampled*
populations (a configurable number of devices per type) whose duplicate
fraction matches the category redundancy rates, plus helpers that generate
one "transaction" (a synchronised round of measurements, which is the unit
Table I accounts in).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import ConfigurationError
from repro.sensors.catalog import SensorCatalog, SensorCategory, SensorTypeSpec
from repro.sensors.device import Sensor
from repro.sensors.readings import Reading, ReadingBatch


class ReadingGenerator:
    """Generates deterministic synthetic reading streams from a catalog.

    Parameters
    ----------
    catalog:
        The sensor catalog to draw types from.
    devices_per_type:
        Number of simulated devices instantiated per sensor type.  The real
        per-type populations are tens of thousands; event-level simulations
        use a representative sample and scale byte counts back up with
        :meth:`scale_factor`.
    seed:
        Seed for the shared random source.
    duplicate_probability_override:
        When given, every device uses this duplicate probability instead of
        its category's redundancy rate (used by ablation benchmarks).
    """

    def __init__(
        self,
        catalog: SensorCatalog,
        devices_per_type: int = 10,
        seed: int = 7,
        duplicate_probability_override: Optional[float] = None,
    ) -> None:
        if devices_per_type <= 0:
            raise ConfigurationError("devices_per_type must be positive")
        self.catalog = catalog
        self.devices_per_type = devices_per_type
        self._seed = seed
        self._rng = random.Random(seed)
        self._duplicate_override = duplicate_probability_override
        self._devices: Dict[str, List[Sensor]] = {}
        self._build_devices()

    def _build_devices(self) -> None:
        for spec in self.catalog:
            devices = []
            population = min(self.devices_per_type, spec.sensor_count)
            for index in range(population):
                sensor_id = f"{spec.name}-{index:05d}"
                device_rng = random.Random(self._rng.randrange(2**32))
                devices.append(
                    Sensor(
                        sensor_id=sensor_id,
                        spec=spec,
                        duplicate_probability=self._duplicate_override,
                        rng=device_rng,
                    )
                )
            self._devices[spec.name] = devices

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def devices_for(self, type_name: str) -> List[Sensor]:
        """The simulated devices of one sensor type."""
        return list(self._devices[type_name])

    def all_devices(self) -> List[Sensor]:
        return [device for devices in self._devices.values() for device in devices]

    def shard_devices(self, keep) -> List[Sensor]:
        """The devices selected by ``keep(index, device)``, original order.

        The index is the device's position in :meth:`all_devices` (catalog
        order, then per-type construction order) — the order deployment
        helpers use for round-robin section assignment, so shard workers
        can recompute the same assignment without shipping a map.

        Every device owns an independent RNG that was seeded at construction
        (one draw from the shared seed per device, in catalog order), so a
        filtered subset emits exactly the readings those same devices emit
        in a full-population run: per-shard generation from the shared seed
        is deterministic and bit-identical across any partitioning.
        """
        return [
            device
            for index, device in enumerate(self.all_devices())
            if keep(index, device)
        ]

    @staticmethod
    def transaction_for(devices: Iterable[Sensor], timestamp: float) -> ReadingBatch:
        """One synchronised measurement round over an explicit device subset.

        Equivalent to :meth:`transaction` restricted to *devices* (which
        must be passed in canonical order for batch-order equivalence with
        the full-population transaction).
        """
        batch = ReadingBatch()
        for device in devices:
            batch.append(device.sample(timestamp))
        return batch

    @staticmethod
    def stream_for(
        devices: Iterable[Sensor], start: float = 0.0, end: float = 86_400.0
    ) -> Iterator[Reading]:
        """Every reading the given devices produce in ``[start, end)``.

        Device-major like :meth:`day_stream`; each device samples at its own
        type's interval.
        """
        for device in devices:
            yield from device.stream(start, end)

    def scale_factor(self, spec: SensorTypeSpec) -> float:
        """Ratio between the real population and the simulated sample.

        Multiplying measured byte counts by this factor extrapolates a
        sampled simulation to the full catalog population.
        """
        simulated = len(self._devices[spec.name])
        return spec.sensor_count / simulated

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def transaction(self, timestamp: float, category: Optional[SensorCategory] = None) -> ReadingBatch:
        """One synchronised measurement round across the (sampled) population."""
        batch = ReadingBatch()
        for spec in self.catalog:
            if category is not None and spec.category != category:
                continue
            for device in self._devices[spec.name]:
                batch.append(device.sample(timestamp))
        return batch

    def transactions(
        self,
        count: int,
        start: float = 0.0,
        interval: float = 900.0,
        category: Optional[SensorCategory] = None,
    ) -> Iterator[ReadingBatch]:
        """Yield *count* transaction batches spaced *interval* seconds apart."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        for i in range(count):
            yield self.transaction(start + i * interval, category=category)

    def day_stream(
        self,
        category: Optional[SensorCategory] = None,
        day_seconds: float = 86_400.0,
    ) -> Iterator[Reading]:
        """Yield every reading the sampled population produces in one day.

        Each device samples at its own type's interval, so types with faster
        sampling (e.g. traffic, every minute) contribute proportionally more
        readings, exactly as in Table I.
        """
        for spec in self.catalog:
            if category is not None and spec.category != category:
                continue
            for device in self._devices[spec.name]:
                yield from device.stream(0.0, day_seconds)

    def day_batch(
        self,
        category: Optional[SensorCategory] = None,
        day_seconds: float = 86_400.0,
    ) -> ReadingBatch:
        """Collect :meth:`day_stream` into a single batch."""
        return ReadingBatch(self.day_stream(category=category, day_seconds=day_seconds))
