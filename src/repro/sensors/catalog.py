"""The Sentilo-like sensor catalog of the future smart city of Barcelona.

Every figure in the paper's evaluation derives from the inventory in
Table I: for each sensor *type*, the number of deployed sensors, the wire
size of one measurement ("sending data by each sensor", bytes), the number
of transactions per day, and — per *category* — the fraction of readings the
authors observed to be redundant on the real Sentilo platform.

The constants in this module reproduce those parameters exactly.  Each
:class:`SensorTypeSpec` also records the daily per-sensor byte volume the
paper prints, because one row of Table I (the first noise type) is not an
integer multiple of its message size; we preserve the paper's printed value
for fidelity and expose the implied (fractional) transaction rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError


class SensorCategory(str, Enum):
    """The five Sentilo information-and-service categories used in the paper."""

    ENERGY = "energy"
    NOISE = "noise"
    GARBAGE = "garbage"
    PARKING = "parking"
    URBAN = "urban"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Fraction of redundant (duplicate) readings per category, as measured by the
#: authors on real Sentilo data (Section V.B): energy ~50 %, noise ~75 %,
#: garbage ~70 %, parking ~40 %, urban ~30 %.
CATEGORY_REDUNDANCY: Dict[SensorCategory, float] = {
    SensorCategory.ENERGY: 0.50,
    SensorCategory.NOISE: 0.75,
    SensorCategory.GARBAGE: 0.70,
    SensorCategory.PARKING: 0.40,
    SensorCategory.URBAN: 0.30,
}


@dataclass(frozen=True)
class SensorTypeSpec:
    """Static description of one sensor type from Table I.

    Attributes
    ----------
    name:
        Machine-friendly type name, e.g. ``"electricity_meter"``.
    category:
        The Sentilo category the type belongs to.
    sensor_count:
        Number of deployed sensors of this type in the future Barcelona.
    message_size_bytes:
        Wire size of one measurement ("sending data by each sensor").
    daily_bytes_per_sensor:
        Bytes one sensor sends per day (the paper's printed figure).
    value_range:
        Plausible (low, high) range for synthetic measurement values.
    value_resolution:
        Quantisation step for synthetic values; coarser resolution produces
        more naturally occurring duplicates.
    """

    name: str
    category: SensorCategory
    sensor_count: int
    message_size_bytes: int
    daily_bytes_per_sensor: int
    value_range: Tuple[float, float] = (0.0, 100.0)
    value_resolution: float = 1.0

    def __post_init__(self) -> None:
        if self.sensor_count <= 0:
            raise ConfigurationError(f"{self.name}: sensor_count must be positive")
        if self.message_size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: message_size_bytes must be positive")
        if self.daily_bytes_per_sensor <= 0:
            raise ConfigurationError(f"{self.name}: daily_bytes_per_sensor must be positive")
        if self.value_range[0] >= self.value_range[1]:
            raise ConfigurationError(f"{self.name}: value_range must be increasing")
        if self.value_resolution <= 0:
            raise ConfigurationError(f"{self.name}: value_resolution must be positive")

    # ------------------------------------------------------------------ #
    # Derived per-type quantities (the cells of Table I).
    # ------------------------------------------------------------------ #
    @property
    def transactions_per_day(self) -> float:
        """Implied number of transactions per day (may be fractional).

        For all types but the first noise type this is a whole number
        (e.g. 96 transactions/day = one every 15 minutes).
        """
        return self.daily_bytes_per_sensor / self.message_size_bytes

    @property
    def sampling_interval_seconds(self) -> float:
        """Average seconds between two transactions of one sensor."""
        return 86_400.0 / self.transactions_per_day

    @property
    def redundancy_rate(self) -> float:
        """Redundant-reading fraction inherited from the type's category."""
        return CATEGORY_REDUNDANCY[self.category]

    def bytes_per_transaction_all_sensors(self) -> int:
        """Total bytes all sensors of this type send in one transaction."""
        return self.sensor_count * self.message_size_bytes

    def bytes_per_day_all_sensors(self) -> int:
        """Total bytes all sensors of this type send in one day."""
        return self.sensor_count * self.daily_bytes_per_sensor

    def bytes_per_transaction_after_redundancy(self) -> int:
        """Per-transaction volume after redundant-data elimination."""
        return round(self.bytes_per_transaction_all_sensors() * (1.0 - self.redundancy_rate))

    def bytes_per_day_after_redundancy(self) -> int:
        """Per-day volume after redundant-data elimination."""
        return round(self.bytes_per_day_all_sensors() * (1.0 - self.redundancy_rate))


class SensorCatalog:
    """An immutable collection of :class:`SensorTypeSpec` with lookups and totals."""

    def __init__(self, types: Iterable[SensorTypeSpec]) -> None:
        self._types: List[SensorTypeSpec] = list(types)
        names = [t.name for t in self._types]
        if len(names) != len(set(names)):
            raise ConfigurationError("duplicate sensor type names in catalog")
        self._by_name: Dict[str, SensorTypeSpec] = {t.name: t for t in self._types}

    # -- collection protocol ------------------------------------------- #
    def __iter__(self) -> Iterator[SensorTypeSpec]:
        return iter(self._types)

    def __len__(self) -> int:
        return len(self._types)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> SensorTypeSpec:
        """Look up a type by name, raising ``KeyError`` if unknown."""
        return self._by_name[name]

    @property
    def type_names(self) -> List[str]:
        return [t.name for t in self._types]

    @property
    def categories(self) -> List[SensorCategory]:
        """Categories present in the catalog, in first-appearance order."""
        seen: List[SensorCategory] = []
        for spec in self._types:
            if spec.category not in seen:
                seen.append(spec.category)
        return seen

    def types_in_category(self, category: SensorCategory) -> List[SensorTypeSpec]:
        return [t for t in self._types if t.category == category]

    def subset(self, categories: Iterable[SensorCategory]) -> "SensorCatalog":
        """Return a catalog restricted to the given categories."""
        wanted = set(categories)
        return SensorCatalog(t for t in self._types if t.category in wanted)

    def scaled(self, factor: float) -> "SensorCatalog":
        """Return a catalog with sensor counts scaled by *factor* (min 1 each).

        Used to run full-fidelity event-level simulations on a small fraction
        of the real sensor population and scale the traffic estimates back up.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        scaled_types = []
        for spec in self._types:
            scaled_count = max(1, round(spec.sensor_count * factor))
            scaled_types.append(
                SensorTypeSpec(
                    name=spec.name,
                    category=spec.category,
                    sensor_count=scaled_count,
                    message_size_bytes=spec.message_size_bytes,
                    daily_bytes_per_sensor=spec.daily_bytes_per_sensor,
                    value_range=spec.value_range,
                    value_resolution=spec.value_resolution,
                )
            )
        return SensorCatalog(scaled_types)

    # -- totals (the "Total number" rows of Table I) -------------------- #
    def total_sensors(self, category: Optional[SensorCategory] = None) -> int:
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.sensor_count for t in types)

    def total_message_bytes_per_sensor(self, category: Optional[SensorCategory] = None) -> int:
        """Sum of message sizes across types ("by each sensor" total row)."""
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.message_size_bytes for t in types)

    def total_bytes_per_transaction(self, category: Optional[SensorCategory] = None) -> int:
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.bytes_per_transaction_all_sensors() for t in types)

    def total_bytes_per_day(self, category: Optional[SensorCategory] = None) -> int:
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.bytes_per_day_all_sensors() for t in types)

    def total_bytes_per_transaction_after_redundancy(
        self, category: Optional[SensorCategory] = None
    ) -> int:
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.bytes_per_transaction_after_redundancy() for t in types)

    def total_bytes_per_day_after_redundancy(
        self, category: Optional[SensorCategory] = None
    ) -> int:
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.bytes_per_day_after_redundancy() for t in types)

    def total_daily_bytes_per_sensor(self, category: Optional[SensorCategory] = None) -> int:
        """Sum of per-sensor daily bytes across types (Table I total row)."""
        types = self._types if category is None else self.types_in_category(category)
        return sum(t.daily_bytes_per_sensor for t in types)


def _energy(name: str, size: int = 22, daily: int = 2_112) -> SensorTypeSpec:
    return SensorTypeSpec(
        name=name,
        category=SensorCategory.ENERGY,
        sensor_count=70_717,
        message_size_bytes=size,
        daily_bytes_per_sensor=daily,
        value_range=(0.0, 500.0),
        value_resolution=1.0,
    )


#: The 21 sensor types of Table I with the paper's exact parameters.
BARCELONA_CATALOG = SensorCatalog(
    [
        # ----------------------- Energy monitoring ----------------------- #
        _energy("electricity_meter"),
        _energy("external_ambient_conditions"),
        _energy("gas_meter"),
        _energy("internal_ambient_conditions"),
        _energy("network_analyzer", size=242, daily=23_232),
        _energy("solar_thermal_installation"),
        _energy("temperature"),
        # ----------------------- Noise monitoring ------------------------ #
        SensorTypeSpec(
            name="noise_level_basic",
            category=SensorCategory.NOISE,
            sensor_count=10_000,
            message_size_bytes=22,
            daily_bytes_per_sensor=768,
            value_range=(30.0, 110.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="noise_level_continuous",
            category=SensorCategory.NOISE,
            sensor_count=10_000,
            message_size_bytes=22,
            daily_bytes_per_sensor=31_680,
            value_range=(30.0, 110.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="noise_peak_detector",
            category=SensorCategory.NOISE,
            sensor_count=10_000,
            message_size_bytes=22,
            daily_bytes_per_sensor=31_680,
            value_range=(30.0, 120.0),
            value_resolution=1.0,
        ),
        # ----------------------- Garbage collection ---------------------- #
        SensorTypeSpec(
            name="container_glass",
            category=SensorCategory.GARBAGE,
            sensor_count=40_000,
            message_size_bytes=50,
            daily_bytes_per_sensor=1_800,
            value_range=(0.0, 100.0),
            value_resolution=5.0,
        ),
        SensorTypeSpec(
            name="container_organic",
            category=SensorCategory.GARBAGE,
            sensor_count=40_000,
            message_size_bytes=50,
            daily_bytes_per_sensor=1_800,
            value_range=(0.0, 100.0),
            value_resolution=5.0,
        ),
        SensorTypeSpec(
            name="container_paper",
            category=SensorCategory.GARBAGE,
            sensor_count=40_000,
            message_size_bytes=50,
            daily_bytes_per_sensor=1_800,
            value_range=(0.0, 100.0),
            value_resolution=5.0,
        ),
        SensorTypeSpec(
            name="container_plastic",
            category=SensorCategory.GARBAGE,
            sensor_count=40_000,
            message_size_bytes=50,
            daily_bytes_per_sensor=1_800,
            value_range=(0.0, 100.0),
            value_resolution=5.0,
        ),
        SensorTypeSpec(
            name="container_refuse",
            category=SensorCategory.GARBAGE,
            sensor_count=40_000,
            message_size_bytes=50,
            daily_bytes_per_sensor=1_800,
            value_range=(0.0, 100.0),
            value_resolution=5.0,
        ),
        # ----------------------------- Parking --------------------------- #
        SensorTypeSpec(
            name="parking_spot",
            category=SensorCategory.PARKING,
            sensor_count=80_000,
            message_size_bytes=40,
            daily_bytes_per_sensor=4_000,
            value_range=(0.0, 1.0),
            value_resolution=1.0,
        ),
        # --------------------------- Urban Lab ---------------------------- #
        SensorTypeSpec(
            name="air_quality",
            category=SensorCategory.URBAN,
            sensor_count=40_000,
            message_size_bytes=144,
            daily_bytes_per_sensor=13_824,
            value_range=(0.0, 500.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="bicycle_flow",
            category=SensorCategory.URBAN,
            sensor_count=40_000,
            message_size_bytes=22,
            daily_bytes_per_sensor=3_168,
            value_range=(0.0, 200.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="people_flow",
            category=SensorCategory.URBAN,
            sensor_count=40_000,
            message_size_bytes=22,
            daily_bytes_per_sensor=3_168,
            value_range=(0.0, 1000.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="traffic",
            category=SensorCategory.URBAN,
            sensor_count=40_000,
            message_size_bytes=44,
            daily_bytes_per_sensor=63_360,
            value_range=(0.0, 2000.0),
            value_resolution=1.0,
        ),
        SensorTypeSpec(
            name="weather",
            category=SensorCategory.URBAN,
            sensor_count=40_000,
            message_size_bytes=120,
            daily_bytes_per_sensor=34_560,
            value_range=(-10.0, 45.0),
            value_resolution=0.5,
        ),
    ]
)

#: The category totals the paper prints in Table I (bytes per day, cloud model
#: and F2C model).  Used by tests and EXPERIMENTS.md to check exact fidelity.
PAPER_TABLE1_DAILY_TOTALS: Mapping[SensorCategory, Tuple[int, int]] = {
    SensorCategory.ENERGY: (2_539_023_168, 1_269_511_584),
    SensorCategory.NOISE: (641_280_000, 160_320_000),
    SensorCategory.GARBAGE: (360_000_000, 108_000_000),
    SensorCategory.PARKING: (320_000_000, 192_000_000),
    SensorCategory.URBAN: (4_723_200_000, 3_306_240_000),
}

#: Citywide totals printed in the last row of Table I.
PAPER_TABLE1_GRAND_TOTAL_SENSORS = 1_005_019
PAPER_TABLE1_GRAND_TOTAL_DAILY_CLOUD = 8_583_503_168
PAPER_TABLE1_GRAND_TOTAL_DAILY_F2C = 5_036_071_584
PAPER_TABLE1_GRAND_TOTAL_PER_TRANSACTION_CLOUD = 54_388_158
PAPER_TABLE1_GRAND_TOTAL_PER_TRANSACTION_F2C = 28_165_079

#: Compression factor measured by the authors with zip at fog layer 1:
#: 1,360,043,206 bytes compressed down to 295,428,463 bytes (≈78 % reduction).
PAPER_COMPRESSED_BYTES = 295_428_463
PAPER_UNCOMPRESSED_BYTES = 1_360_043_206
PAPER_COMPRESSION_RATIO = PAPER_COMPRESSED_BYTES / PAPER_UNCOMPRESSED_BYTES
