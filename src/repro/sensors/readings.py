"""Reading (observation) data model.

A :class:`Reading` is the atomic unit of data in the system: one measurement
emitted by one sensor at one instant.  Readings carry the *wire size* the
measurement occupies when transmitted (the quantity the paper's Table I is
built from), independent of the in-memory Python object size.

Columnar storage
----------------
The per-reading ``Reading`` dataclass is the *API* representation; the
*native* representation everywhere on the ingest hot path is
:class:`ReadingColumns` — parallel lists of the reading fields (one list per
column: sensor ids, values, timestamps, wire sizes, ...).  A city-scale
stream is millions of rows per hour; keeping them as columns removes the
dominant per-reading costs (frozen-dataclass construction and per-object
accounting) and lets every layer operate with bulk list operations.

:class:`ReadingBatch` is backed by a :class:`ReadingColumns` and materializes
``Reading`` objects lazily, only when a caller actually asks for them
(iteration, indexing, ``.readings``), so the public per-reading API keeps
working unchanged while batch producers and consumers stay column-wise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from operator import attrgetter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.serialization import (
    decode_columns,
    encode_columns,
    encode_columns_binary_v2,
    encode_csv_line,
    is_column_frame,
    pad_to_size,
)
from repro.common.typedcols import (
    as_float_column,
    as_int_column,
    clear_column,
    column_min,
    column_sum,
    float_column,
    int_column,
    take_floats,
    take_ints,
)

#: When set (``REPRO_DEBUG_BATCH_ACCOUNTING=1``), every materialization of a
#: batch re-verifies the incrementally maintained byte/category counters
#: against a full recount — catches callers that mutate a batch's backing
#: columns behind its back.
_DEBUG_ACCOUNTING = os.environ.get("REPRO_DEBUG_BATCH_ACCOUNTING", "") not in ("", "0")


@dataclass(frozen=True)
class Reading:
    """One sensor observation.

    Attributes
    ----------
    sensor_id:
        Identifier of the emitting device.
    sensor_type:
        Name of the sensor type (e.g. ``"electricity_meter"``).
    category:
        Sentilo category name (e.g. ``"energy"``).
    value:
        The measured value.  Scalar for most types.
    timestamp:
        Simulation time (seconds) at which the reading was produced.
    fog_node_id:
        Identifier of the fog layer-1 node whose area contains the sensor
        (filled in by the city model / acquisition block).
    size_bytes:
        Wire size of the encoded reading.  For catalog-driven streams this is
        exactly the per-transaction message size from Table I.
    tags:
        Free-form metadata attached by the data-description phase (timing,
        location, authoring, privacy, quality score, ...).
    """

    sensor_id: str
    sensor_type: str
    category: str
    value: Any
    timestamp: float
    fog_node_id: Optional[str] = None
    size_bytes: int = 0
    sequence: int = 0
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    def with_tags(self, **tags: Any) -> "Reading":
        """Return a copy of the reading with additional tags merged in."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    def with_fog_node(self, fog_node_id: str) -> "Reading":
        """Return a copy assigned to a fog layer-1 node."""
        return replace(self, fog_node_id=fog_node_id)

    def dedup_key(self) -> tuple:
        """Key used by redundant-data elimination.

        Two readings from the same sensor reporting the same value are
        considered redundant (the paper's example: repeated identical
        temperature measurements).
        """
        return (self.sensor_id, self.sensor_type, self.value)

    def encode(self) -> bytes:
        """Encode the reading as a fixed-size wire payload.

        The payload is a CSV-like line padded (or truncated) to
        ``size_bytes`` so that the byte volume observed by the network
        substrate matches the catalog's per-transaction message size exactly.
        Real constrained devices use compact binary framings of comparable
        size; what matters to the traffic experiments is the wire size, not
        the exact field layout.
        """
        line = encode_csv_line(
            [self.sensor_id, self.sensor_type, self.value, f"{self.timestamp:.3f}"]
        )
        if self.size_bytes:
            return pad_to_size(line, self.size_bytes)[: self.size_bytes]
        return line


#: Column-ordered field extractor used by the bulk reading decomposer.
_READING_FIELDS = attrgetter(
    "sensor_id",
    "sensor_type",
    "category",
    "value",
    "timestamp",
    "fog_node_id",
    "size_bytes",
    "sequence",
    "tags",
)


def _encode_row(sensor_id: str, sensor_type: str, value: Any, timestamp: float, size: int) -> bytes:
    """Wire encoding of one columnar row (same bytes as ``Reading.encode``)."""
    line = encode_csv_line([sensor_id, sensor_type, value, f"{timestamp:.3f}"])
    if size:
        return pad_to_size(line, size)[:size]
    return line


class ReadingColumns:
    """Column-oriented storage for a sequence of readings.

    Nine parallel columns, one per :class:`Reading` field; row *i* of the
    logical sequence is ``(sensor_ids[i], sensor_types[i], ...)``.  String
    columns hold shared references (sensor ids, types and categories come
    from a small fixed vocabulary, so the lists intern naturally); the tag
    column holds per-row dict references.

    The hot numeric columns (``timestamps``, ``sizes``) are *dual-backed*:
    plain Python lists while a batch is being built and consumed row-wise
    (appends and ``zip`` iteration over lists avoid a box/unbox per
    element, which measurably dominates the in-process ingest hot path),
    and typed arrays — ``array('d')`` / ``array('q')`` — where density and
    bulk operations win: columns decoded from wire frames arrive as typed
    arrays straight off the packed buffers (zero conversion), the
    time-series store keeps its per-series columns typed (8 bytes per
    element instead of a boxed object, numpy-ready), and :meth:`compact`
    converts a long-held batch in place.  All mutation/consumption paths
    accept either backing.

    Columns are append/extend/gather-only: rows are never removed in place
    (filtering builds a new instance via :meth:`gather`), which keeps the
    maintained ``total_bytes`` counter and the lazily cached per-category
    statistics trivially consistent.

    Treat the column lists as read-only unless you own the instance; code
    that mutates them directly must keep all nine the same length and call
    :meth:`_invalidate` (or go through the mutation methods).
    """

    __slots__ = (
        "sensor_ids",
        "sensor_types",
        "categories",
        "values",
        "timestamps",
        "fog_node_ids",
        "sizes",
        "sequences",
        "tags",
        "_total_bytes",
        "_cat_cache",
    )

    def __init__(self) -> None:
        self.sensor_ids: List[str] = []
        self.sensor_types: List[str] = []
        self.categories: List[str] = []
        self.values: List[Any] = []
        self.timestamps: Sequence[float] = []  # list, or array('d') once compacted/decoded
        self.fog_node_ids: List[Optional[str]] = []
        self.sizes: Sequence[int] = []  # list, or array('q') once compacted/decoded
        self.sequences: List[int] = []
        self.tags: List[Optional[Dict[str, Any]]] = []
        self._total_bytes = 0
        # (row_count_at_compute, counts, bytes) — recomputed when stale.
        self._cat_cache: Optional[Tuple[int, Dict[str, int], Dict[str, int]]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_readings(cls, readings: Iterable[Reading]) -> "ReadingColumns":
        if isinstance(readings, list):
            return cls.from_reading_list(readings)
        columns = cls()
        columns.extend_readings(readings)
        return columns

    @classmethod
    def from_reading_list(cls, readings: List[Reading]) -> "ReadingColumns":
        """Decompose a reading list in bulk (hot path).

        One C-level attrgetter call per reading plus a ``zip(*...)``
        transpose — considerably cheaper than nine per-field comprehensions.
        """
        columns = cls()
        if not readings:
            return columns
        (
            sensor_ids,
            sensor_types,
            categories,
            values,
            timestamps,
            fog_node_ids,
            sizes,
            sequences,
            tags,
        ) = zip(*map(_READING_FIELDS, readings))
        columns.sensor_ids = list(sensor_ids)
        columns.sensor_types = list(sensor_types)
        columns.categories = list(categories)
        columns.values = list(values)
        columns.timestamps = list(timestamps)
        columns.fog_node_ids = list(fog_node_ids)
        columns.sizes = list(sizes)
        columns.sequences = list(sequences)
        columns.tags = list(tags)
        columns._total_bytes = sum(sizes)
        return columns

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append_reading(self, reading: Reading) -> None:
        self.append_row(
            reading.sensor_id,
            reading.sensor_type,
            reading.category,
            reading.value,
            reading.timestamp,
            reading.fog_node_id,
            reading.size_bytes,
            reading.sequence,
            reading.tags,
        )

    def append_row(
        self,
        sensor_id: str,
        sensor_type: str,
        category: str,
        value: Any,
        timestamp: float,
        fog_node_id: Optional[str],
        size_bytes: int,
        sequence: int,
        tags: Optional[Dict[str, Any]],
    ) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self.sensor_ids.append(sensor_id)
        self.sensor_types.append(sensor_type)
        self.categories.append(category)
        self.values.append(value)
        self.timestamps.append(timestamp)
        self.fog_node_ids.append(fog_node_id)
        self.sizes.append(size_bytes)
        self.sequences.append(sequence)
        self.tags.append(tags)
        self._total_bytes += size_bytes

    def extend_readings(self, readings: Iterable[Reading]) -> None:
        append = self.append_reading
        for reading in readings:
            append(reading)

    def extend_columns(self, other: "ReadingColumns") -> None:
        """Append every row of *other* (bulk list extends, no materialization)."""
        # Carry the per-category statistics across the merge when both sides
        # have fresh caches (saves a full recount on the next accounting
        # touch — batches are re-counted once per hierarchy hop otherwise).
        merged_cache = None
        own_count = len(self.sensor_ids)
        if not own_count:
            other_cache = other._cat_cache
            if other_cache is not None and other_cache[0] == len(other.sensor_ids):
                merged_cache = other_cache
        else:
            own_cache = self._cat_cache
            other_cache = other._cat_cache
            if (
                own_cache is not None
                and own_cache[0] == own_count
                and other_cache is not None
                and other_cache[0] == len(other.sensor_ids)
            ):
                counts = dict(own_cache[1])
                volumes = dict(own_cache[2])
                for category, count in other_cache[1].items():
                    counts[category] = counts.get(category, 0) + count
                for category, volume in other_cache[2].items():
                    volumes[category] = volumes.get(category, 0) + volume
                merged_cache = (own_count + len(other.sensor_ids), counts, volumes)
        self.sensor_ids.extend(other.sensor_ids)
        self.sensor_types.extend(other.sensor_types)
        self.categories.extend(other.categories)
        self.values.extend(other.values)
        self.timestamps.extend(other.timestamps)
        self.fog_node_ids.extend(other.fog_node_ids)
        self.sizes.extend(other.sizes)
        self.sequences.extend(other.sequences)
        self.tags.extend(other.tags)
        self._total_bytes += other._total_bytes
        self._cat_cache = merged_cache

    def extend_arrays(
        self,
        sensor_ids: Sequence[str],
        sensor_types: Sequence[str],
        categories: Sequence[str],
        values: Sequence[Any],
        timestamps: Sequence[float],
        fog_node_ids: Sequence[Optional[str]],
        sizes: Sequence[int],
        sequences: Sequence[int],
        tags: Sequence[Optional[Dict[str, Any]]],
    ) -> None:
        """Trusted bulk append of pre-built equal-length column slices."""
        self.sensor_ids.extend(sensor_ids)
        self.sensor_types.extend(sensor_types)
        self.categories.extend(categories)
        self.values.extend(values)
        self.timestamps.extend(timestamps)
        self.fog_node_ids.extend(fog_node_ids)
        self.sizes.extend(sizes)
        self.sequences.extend(sequences)
        self.tags.extend(tags)
        self._total_bytes += sum(sizes)

    def clear(self) -> None:
        self.sensor_ids.clear()
        self.sensor_types.clear()
        self.categories.clear()
        self.values.clear()
        clear_column(self.timestamps)
        self.fog_node_ids.clear()
        clear_column(self.sizes)
        self.sequences.clear()
        self.tags.clear()
        self._total_bytes = 0
        self._cat_cache = None

    # ------------------------------------------------------------------ #
    # Row access / materialization
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.sensor_ids)

    def materialize(self, index: int) -> Reading:
        """Build the :class:`Reading` for row *index* (a fresh object)."""
        tags = self.tags[index]
        return Reading(
            sensor_id=self.sensor_ids[index],
            sensor_type=self.sensor_types[index],
            category=self.categories[index],
            value=self.values[index],
            timestamp=self.timestamps[index],
            fog_node_id=self.fog_node_ids[index],
            size_bytes=self.sizes[index],
            sequence=self.sequences[index],
            tags=tags if tags is not None else {},
        )

    def to_readings(self) -> List[Reading]:
        """Materialize every row, in order."""
        return [
            Reading(
                sensor_id=sid,
                sensor_type=st,
                category=cat,
                value=value,
                timestamp=ts,
                fog_node_id=fog,
                size_bytes=size,
                sequence=seq,
                tags=tags if tags is not None else {},
            )
            for sid, st, cat, value, ts, fog, size, seq, tags in zip(
                self.sensor_ids,
                self.sensor_types,
                self.categories,
                self.values,
                self.timestamps,
                self.fog_node_ids,
                self.sizes,
                self.sequences,
                self.tags,
            )
        ]

    def iter_readings(self) -> Iterator[Reading]:
        for index in range(len(self.sensor_ids)):
            yield self.materialize(index)

    def gather(self, indices: Iterable[int]) -> "ReadingColumns":
        """New columns holding the given rows, in the given order."""
        out = ReadingColumns()
        ids, types, cats = self.sensor_ids, self.sensor_types, self.categories
        values, tss, fogs = self.values, self.timestamps, self.fog_node_ids
        sizes, seqs, tags = self.sizes, self.sequences, self.tags
        index_list = indices if isinstance(indices, list) else list(indices)
        out.sensor_ids = [ids[i] for i in index_list]
        out.sensor_types = [types[i] for i in index_list]
        out.categories = [cats[i] for i in index_list]
        out.values = [values[i] for i in index_list]
        # Preserve each column's backing: typed gathers stay typed (and
        # vectorize via numpy when large), list gathers stay lists.
        out.timestamps = (
            [tss[i] for i in index_list] if type(tss) is list else take_floats(tss, index_list)
        )
        out.fog_node_ids = [fogs[i] for i in index_list]
        out.sizes = (
            [sizes[i] for i in index_list] if type(sizes) is list else take_ints(sizes, index_list)
        )
        out.sequences = [seqs[i] for i in index_list]
        out.tags = [tags[i] for i in index_list]
        out._total_bytes = column_sum(out.sizes)
        return out

    @property
    def frozen(self) -> bool:
        """Whether the instance is read-only (see :meth:`freeze`)."""
        return False

    def freeze(self) -> "ReadingColumns":
        """Make the instance read-only in place; returns ``self``.

        Every mutating method raises afterwards.  Freezing lets a shared
        owner (the query service's memo) hand the same columns to many
        readers without a defensive copy per reader — anyone who needs a
        mutable instance takes an explicit :meth:`copy` (which is always
        unfrozen), e.g. via ``QueryResult.batch()``.

        Implemented as a class swap onto an empty-``__slots__`` subclass,
        so the unfrozen mutation paths (the ingest hot path) pay nothing —
        not even a flag check.
        """
        self.__class__ = _FrozenReadingColumns
        return self

    def copy(self) -> "ReadingColumns":
        out = ReadingColumns()
        out.sensor_ids = list(self.sensor_ids)
        out.sensor_types = list(self.sensor_types)
        out.categories = list(self.categories)
        out.values = list(self.values)
        out.timestamps = self.timestamps[:]  # slice copy keeps the backing type
        out.fog_node_ids = list(self.fog_node_ids)
        out.sizes = self.sizes[:]
        out.sequences = list(self.sequences)
        out.tags = list(self.tags)
        out._total_bytes = self._total_bytes
        return out

    def compact(self) -> "ReadingColumns":
        """Convert the hot numeric columns to typed arrays, in place.

        One bulk C conversion per column; afterwards the batch holds its
        timestamps/sizes at 8 bytes per element instead of a pointer to a
        boxed object — worth it for batches parked for a while (e.g. a fog
        tier's pending-upward backlog between transfer rounds).  Returns
        ``self`` for chaining.  No-op on already-typed columns.
        """
        self.timestamps = as_float_column(self.timestamps)
        self.sizes = as_int_column(self.sizes)
        return self

    def tags_at(self, index: int) -> Dict[str, Any]:
        """The tag dict of row *index* (empty dict when the row has none)."""
        tags = self.tags[index]
        return tags if tags is not None else {}

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def _category_stats(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(counts, bytes) per category, cached until the row count changes."""
        cache = self._cat_cache
        n = len(self.sensor_ids)
        if cache is not None and cache[0] == n:
            return cache[1], cache[2]
        counts: Dict[str, int] = {}
        volumes: Dict[str, int] = {}
        for category, size in zip(self.categories, self.sizes):
            counts[category] = counts.get(category, 0) + 1
            volumes[category] = volumes.get(category, 0) + size
        self._cat_cache = (n, counts, volumes)
        return counts, volumes

    def category_counts(self) -> Dict[str, int]:
        return dict(self._category_stats()[0])

    def category_bytes(self) -> Dict[str, int]:
        return dict(self._category_stats()[1])

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the nine columns.

        Typed array columns count their packed buffer; list columns count
        one slot pointer per row plus each distinct referenced object once
        — the string and tag columns share references heavily (interning),
        so a shared object is never double-charged.  An honest O(rows)
        accounting for cache budgets, not an exact allocator model.
        """
        import sys

        total = 0
        seen = set()
        for column in (
            self.sensor_ids,
            self.sensor_types,
            self.categories,
            self.values,
            self.timestamps,
            self.fog_node_ids,
            self.sizes,
            self.sequences,
            self.tags,
        ):
            if isinstance(column, list):
                total += 8 * len(column)  # one CPython slot pointer per row
                for item in column:
                    if item is None:
                        continue
                    marker = id(item)
                    if marker not in seen:
                        seen.add(marker)
                        total += sys.getsizeof(item)
            else:  # typed array backing: a packed buffer, itemsize per row
                total += len(column) * column.itemsize
        return total

    def _invalidate(self) -> None:
        """Drop cached statistics after a direct column mutation."""
        self._cat_cache = None
        self._total_bytes = sum(self.sizes)

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Per-reading wire encodings, concatenated (no frame header).

        Byte-identical to concatenating ``Reading.encode()`` over the
        materialized rows.
        """
        return b"".join(
            _encode_row(sid, st, value, ts, size)
            for sid, st, value, ts, size in zip(
                self.sensor_ids, self.sensor_types, self.values, self.timestamps, self.sizes
            )
        )

    def encode_frame(self, format: Optional[str] = None) -> bytes:
        """One self-describing wire frame for the whole column set.

        This is the batch wire format fog nodes receive (one frame per
        node-round instead of one CSV payload per reading); the per-reading
        Table-I wire sizes travel in the frame so traffic accounting at the
        receiver is identical to the per-reading CSV path.  Fog-node ids and
        tags are not part of the wire format (they are assigned by the
        receiving node's acquisition block, exactly as with CSV payloads).

        *format* selects the wire layout (``"binary"`` — packed columns,
        the compact default — ``"binary-v2"`` — the shared-dictionary
        layout — or ``"json"`` — the PR 2 compatibility layout); ``None``
        uses the process-wide default (see
        :data:`repro.common.serialization.DEFAULT_FRAME_FORMAT`).  All
        layouts decode to identical columns via :meth:`decode_frame`, which
        auto-detects the format from the payload's magic prefix.
        """
        return encode_columns(self._wire_columns(), format=format)

    def encode_frame_extended(self) -> bytes:
        """One *extended* v2 frame carrying tags and fog-node ids in-body.

        Unlike :meth:`encode_frame`, the per-row tag dicts and fog-node
        assignments travel inside the frame as dictionary-coded columns
        (identity-interned, so rows sharing one tag dict decode back to one
        shared object).  This is the IPC batch payload — the broker wire
        keeps the plain seven-column layout, where the receiving node's
        acquisition block assigns tags and fog ids itself.  It uses the
        codec's *fast* deflate: pipe bytes are CPU-bound, not
        bandwidth-bound.
        """
        return encode_columns_binary_v2(
            self._wire_columns(), tags=self.tags, fog_node_ids=self.fog_node_ids, fast=True
        )

    def _wire_columns(self) -> dict:
        return {
            "sensor_ids": self.sensor_ids,
            "sensor_types": self.sensor_types,
            "categories": self.categories,
            "values": self.values,
            "timestamps": self.timestamps,
            "sizes": self.sizes,
            "sequences": self.sequences,
        }

    @classmethod
    def decode_frame(cls, payload: bytes) -> "ReadingColumns":
        """Inverse of :meth:`encode_frame` (either layout, auto-detected).

        Raises ``ValueError`` for any malformed frame — a frame decodes
        whole or not at all, so a corrupt payload can never partially
        ingest.
        """
        record = decode_columns(payload)
        out = cls()
        n = len(record["sensor_ids"])
        out.sensor_ids = [str(s) for s in record["sensor_ids"]]
        out.sensor_types = [str(s) for s in record["sensor_types"]]
        out.categories = [str(s) for s in record["categories"]]
        out.values = list(record["values"])
        try:
            timestamps = record["timestamps"]
            out.timestamps = (
                as_float_column(timestamps)
                if type(timestamps) is not list
                else float_column(float(t) for t in timestamps)
            )
            sizes = record["sizes"]
            out.sizes = (
                as_int_column(sizes)
                if type(sizes) is not list
                else int_column(int(s) for s in sizes)
            )
            out.sequences = [int(s) for s in record["sequences"]]
        except (TypeError, OverflowError) as exc:
            # JSON frames can smuggle non-numeric or >64-bit entries into
            # the numeric columns; they must fail frame validation, not
            # corrupt a typed column downstream.
            raise ValueError(f"column frame carries a non-numeric column entry: {exc}") from exc
        smallest = column_min(out.sizes)
        if smallest is not None and smallest < 0:
            # A reading can never carry a negative wire size (Reading and
            # append_row both enforce this); a frame must not smuggle one
            # into the byte accounting.
            raise ValueError("column frame carries a negative wire size")
        # Extended v2 frames carry the identity columns in-body (already
        # validated per table entry by the frame decoder); every other
        # layout leaves them for the receiving acquisition block to assign.
        tags = record.get("tags")
        out.tags = list(tags) if tags is not None else [None] * n
        fog_node_ids = record.get("fog_node_ids")
        out.fog_node_ids = list(fog_node_ids) if fog_node_ids is not None else [None] * n
        out._total_bytes = column_sum(out.sizes)
        return out

    @staticmethod
    def is_frame(payload: bytes) -> bool:
        """Whether *payload* is a column frame (vs a per-reading CSV line)."""
        return is_column_frame(payload)

    def __repr__(self) -> str:
        return f"ReadingColumns(n={len(self.sensor_ids)}, bytes={self._total_bytes})"


class _FrozenReadingColumns(ReadingColumns):
    """Read-only :class:`ReadingColumns` (the post-:meth:`freeze` class).

    Same memory layout (empty ``__slots__``), so :meth:`ReadingColumns.freeze`
    can swap a live instance's class; every mutator raises.  :meth:`copy`
    (inherited) still returns a regular, mutable ``ReadingColumns``.
    """

    __slots__ = ()

    @property
    def frozen(self) -> bool:
        return True

    def freeze(self) -> "ReadingColumns":
        return self

    def _refuse(self, *_args, **_kwargs):
        raise TypeError(
            "these ReadingColumns are frozen (shared read-only, e.g. a memoized "
            "query result); take a mutable copy with .copy() or adopt via "
            "QueryResult.batch()"
        )

    append_reading = _refuse
    append_row = _refuse
    extend_readings = _refuse
    extend_columns = _refuse
    extend_arrays = _refuse
    clear = _refuse
    compact = _refuse
    _invalidate = _refuse


class ReadingsView(Sequence):
    """Read-only sequence view over a batch's materialized readings.

    Returned by :attr:`ReadingBatch.readings` instead of the backing list so
    callers cannot mutate the batch behind its incremental byte/category
    counters (the PR 1 aliasing hazard).
    """

    __slots__ = ("_items",)

    def __init__(self, items: List[Reading]) -> None:
        self._items = items

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        result = self._items[index]
        return list(result) if isinstance(index, slice) else result

    def __iter__(self) -> Iterator[Reading]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"ReadingsView(n={len(self._items)})"


class ReadingBatch:
    """An ordered collection of readings with aggregate size accounting.

    Batches are what fog nodes accumulate between periodic upward transfers;
    aggregation techniques operate on batches and report how many bytes they
    removed.

    Columnar internals: the batch's single source of truth is a
    :class:`ReadingColumns`; ``Reading`` objects are materialized lazily (and
    cached) only when a caller uses the per-reading API (iteration, indexing,
    :attr:`readings`, :meth:`filter`).  Producers and consumers on the hot
    path exchange the columns directly via :meth:`to_columns` /
    :meth:`from_columns` and never pay for object materialization.

    ``total_bytes`` is maintained incrementally and per-category statistics
    are cached, so the accounting the ingest hot path touches once per
    transfer stays O(1)/O(#categories) regardless of batch size.
    """

    __slots__ = ("_columns", "_cache")

    def __init__(self, readings: Optional[Iterable[Reading]] = None) -> None:
        self._columns = ReadingColumns()
        # Materialized Reading objects, kept in sync with the columns (or
        # None when nothing has asked for per-reading access yet).
        self._cache: Optional[List[Reading]] = None
        if readings is not None:
            self.extend(readings)

    # ------------------------------------------------------------------ #
    # Columnar interface
    # ------------------------------------------------------------------ #
    @classmethod
    def from_columns(cls, columns: ReadingColumns) -> "ReadingBatch":
        """Wrap *columns* as a batch (adopts the instance, no copy).

        The batch takes ownership: mutate the data through the batch (or not
        at all) afterwards.
        """
        batch = cls.__new__(cls)
        batch._columns = columns
        batch._cache = None
        return batch

    def to_columns(self) -> ReadingColumns:
        """The batch's backing columns (live view, not a copy)."""
        if _DEBUG_ACCOUNTING:
            self.verify_accounting()
        return self._columns

    @property
    def columns(self) -> ReadingColumns:
        return self._columns

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, reading: Reading) -> None:
        self._columns.append_reading(reading)
        # Any mutation drops the materialization cache so that previously
        # handed-out views/iterators are uniformly frozen snapshots (a mix
        # of live-growing and stale views would be worse than either).
        self._cache = None

    def extend(self, readings: Iterable[Reading]) -> None:
        self._cache = None
        if isinstance(readings, ReadingBatch):
            self._columns.extend_columns(readings._columns)
            return
        if isinstance(readings, ReadingColumns):
            self._columns.extend_columns(readings)
            return
        columns_append = self._columns.append_reading
        for reading in readings:
            columns_append(reading)

    def clear(self) -> None:
        self._columns.clear()
        self._cache = None

    # ------------------------------------------------------------------ #
    # Per-reading access (lazy materialization)
    # ------------------------------------------------------------------ #
    def _materialized(self) -> List[Reading]:
        if self._cache is None:
            if _DEBUG_ACCOUNTING:
                self.verify_accounting()
            self._cache = self._columns.to_readings()
        return self._cache

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Reading]:
        return iter(self._materialized())

    def __getitem__(self, index):
        return self._materialized()[index]

    def __bool__(self) -> bool:
        return len(self._columns) > 0

    @property
    def readings(self) -> Sequence[Reading]:
        """The batch's readings as a read-only sequence view.

        The view cannot be mutated, so the incremental byte/category
        counters cannot be silently corrupted by callers (they previously
        received the backing list itself).  It is a snapshot frozen at
        access time: mutating the batch afterwards does not change it.
        """
        return ReadingsView(self._materialized())

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        """Sum of the wire sizes of all readings in the batch."""
        return self._columns.total_bytes

    def categories(self) -> Dict[str, int]:
        """Number of readings per category."""
        return self._columns.category_counts()

    def bytes_by_category(self) -> Dict[str, int]:
        """Total wire bytes per category."""
        return self._columns.category_bytes()

    def verify_accounting(self) -> None:
        """Assert the maintained counters match a full recount (debug aid)."""
        columns = self._columns
        recount = sum(columns.sizes)
        if columns.total_bytes != recount:
            raise AssertionError(
                f"batch accounting corrupted: total_bytes={columns.total_bytes} "
                f"but columns sum to {recount} (was the backing storage mutated directly?)"
            )
        lengths = {
            len(columns.sensor_ids),
            len(columns.sensor_types),
            len(columns.categories),
            len(columns.values),
            len(columns.timestamps),
            len(columns.fog_node_ids),
            len(columns.sizes),
            len(columns.sequences),
            len(columns.tags),
        }
        if len(lengths) != 1:
            raise AssertionError(f"batch columns have diverging lengths: {sorted(lengths)}")

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #
    def filter(self, predicate) -> "ReadingBatch":
        """Return a new batch containing the readings matching *predicate*."""
        readings = self._materialized()
        keep = [i for i, reading in enumerate(readings) if predicate(reading)]
        result = ReadingBatch.from_columns(self._columns.gather(keep))
        result._cache = [readings[i] for i in keep]
        return result

    def split_by_category(self) -> Dict[str, "ReadingBatch"]:
        """Partition the batch into one sub-batch per category."""
        buckets: Dict[str, List[int]] = {}
        for index, category in enumerate(self._columns.categories):
            bucket = buckets.get(category)
            if bucket is None:
                bucket = buckets[category] = []
            bucket.append(index)
        return {
            category: ReadingBatch.from_columns(self._columns.gather(indices))
            for category, indices in buckets.items()
        }

    def compact(self) -> "ReadingBatch":
        """Convert the hot numeric columns to typed arrays in place.

        See :meth:`ReadingColumns.compact`; use on batches held for a while
        (pending queues, archives) to cut their memory footprint.
        """
        self._columns.compact()
        return self

    def encode(self) -> bytes:
        """Concatenate the wire encodings of every reading in the batch."""
        return self._columns.encode()

    def copy(self) -> "ReadingBatch":
        clone = ReadingBatch.from_columns(self._columns.copy())
        if self._cache is not None:
            clone._cache = list(self._cache)
        return clone

    def __repr__(self) -> str:
        return f"ReadingBatch(n={len(self._columns)}, bytes={self.total_bytes})"
