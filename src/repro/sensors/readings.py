"""Reading (observation) data model.

A :class:`Reading` is the atomic unit of data in the system: one measurement
emitted by one sensor at one instant.  Readings carry the *wire size* the
measurement occupies when transmitted (the quantity the paper's Table I is
built from), independent of the in-memory Python object size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.common.serialization import encode_csv_line, pad_to_size


@dataclass(frozen=True)
class Reading:
    """One sensor observation.

    Attributes
    ----------
    sensor_id:
        Identifier of the emitting device.
    sensor_type:
        Name of the sensor type (e.g. ``"electricity_meter"``).
    category:
        Sentilo category name (e.g. ``"energy"``).
    value:
        The measured value.  Scalar for most types.
    timestamp:
        Simulation time (seconds) at which the reading was produced.
    fog_node_id:
        Identifier of the fog layer-1 node whose area contains the sensor
        (filled in by the city model / acquisition block).
    size_bytes:
        Wire size of the encoded reading.  For catalog-driven streams this is
        exactly the per-transaction message size from Table I.
    tags:
        Free-form metadata attached by the data-description phase (timing,
        location, authoring, privacy, quality score, ...).
    """

    sensor_id: str
    sensor_type: str
    category: str
    value: Any
    timestamp: float
    fog_node_id: Optional[str] = None
    size_bytes: int = 0
    sequence: int = 0
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    def with_tags(self, **tags: Any) -> "Reading":
        """Return a copy of the reading with additional tags merged in."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    def with_fog_node(self, fog_node_id: str) -> "Reading":
        """Return a copy assigned to a fog layer-1 node."""
        return replace(self, fog_node_id=fog_node_id)

    def dedup_key(self) -> tuple:
        """Key used by redundant-data elimination.

        Two readings from the same sensor reporting the same value are
        considered redundant (the paper's example: repeated identical
        temperature measurements).
        """
        return (self.sensor_id, self.sensor_type, self.value)

    def encode(self) -> bytes:
        """Encode the reading as a fixed-size wire payload.

        The payload is a CSV-like line padded (or truncated) to
        ``size_bytes`` so that the byte volume observed by the network
        substrate matches the catalog's per-transaction message size exactly.
        Real constrained devices use compact binary framings of comparable
        size; what matters to the traffic experiments is the wire size, not
        the exact field layout.
        """
        line = encode_csv_line(
            [self.sensor_id, self.sensor_type, self.value, f"{self.timestamp:.3f}"]
        )
        if self.size_bytes:
            return pad_to_size(line, self.size_bytes)[: self.size_bytes]
        return line


class ReadingBatch:
    """An ordered collection of readings with aggregate size accounting.

    Batches are what fog nodes accumulate between periodic upward transfers;
    aggregation techniques operate on batches and report how many bytes they
    removed.

    Byte totals and per-category counters are maintained incrementally on
    every mutation, so ``total_bytes``, ``categories()`` and
    ``bytes_by_category()`` are O(1)/O(#categories) regardless of batch size
    — they sit on the ingest hot path (traffic accounting touches them once
    per transfer and once per life-cycle phase).
    """

    __slots__ = ("_readings", "_total_bytes", "_category_counts", "_category_bytes")

    def __init__(self, readings: Optional[Iterable[Reading]] = None) -> None:
        self._readings: List[Reading] = []
        self._total_bytes = 0
        self._category_counts: Dict[str, int] = {}
        self._category_bytes: Dict[str, int] = {}
        if readings is not None:
            self.extend(readings)

    def append(self, reading: Reading) -> None:
        self._readings.append(reading)
        self._account(reading)

    def extend(self, readings: Iterable[Reading]) -> None:
        if isinstance(readings, ReadingBatch):
            self._readings.extend(readings._readings)
            self._total_bytes += readings._total_bytes
            for category, count in readings._category_counts.items():
                self._category_counts[category] = self._category_counts.get(category, 0) + count
            for category, size in readings._category_bytes.items():
                self._category_bytes[category] = self._category_bytes.get(category, 0) + size
            return
        account = self._account
        append = self._readings.append
        for reading in readings:
            append(reading)
            account(reading)

    def _account(self, reading: Reading) -> None:
        self._total_bytes += reading.size_bytes
        category = reading.category
        self._category_counts[category] = self._category_counts.get(category, 0) + 1
        self._category_bytes[category] = self._category_bytes.get(category, 0) + reading.size_bytes

    def __len__(self) -> int:
        return len(self._readings)

    def __iter__(self) -> Iterator[Reading]:
        return iter(self._readings)

    def __getitem__(self, index: int) -> Reading:
        return self._readings[index]

    def __bool__(self) -> bool:
        return bool(self._readings)

    @property
    def readings(self) -> Sequence[Reading]:
        """The backing list of readings (treat as read-only; not a copy)."""
        return self._readings

    @property
    def total_bytes(self) -> int:
        """Sum of the wire sizes of all readings in the batch."""
        return self._total_bytes

    def categories(self) -> Dict[str, int]:
        """Number of readings per category."""
        return {c: n for c, n in self._category_counts.items() if n}

    def bytes_by_category(self) -> Dict[str, int]:
        """Total wire bytes per category."""
        return {c: b for c, b in self._category_bytes.items() if self._category_counts.get(c)}

    def filter(self, predicate) -> "ReadingBatch":
        """Return a new batch containing the readings matching *predicate*."""
        return ReadingBatch(r for r in self._readings if predicate(r))

    def split_by_category(self) -> Dict[str, "ReadingBatch"]:
        """Partition the batch into one sub-batch per category."""
        result: Dict[str, ReadingBatch] = {}
        for reading in self._readings:
            result.setdefault(reading.category, ReadingBatch()).append(reading)
        return result

    def encode(self) -> bytes:
        """Concatenate the wire encodings of every reading in the batch."""
        return b"".join(r.encode() for r in self._readings)

    def clear(self) -> None:
        self._readings.clear()
        self._total_bytes = 0
        self._category_counts.clear()
        self._category_bytes.clear()

    def copy(self) -> "ReadingBatch":
        # Passing self (not the raw list) hits extend()'s batch branch, which
        # merges the maintained counters instead of re-accounting per reading.
        return ReadingBatch(self)

    def __repr__(self) -> str:
        return f"ReadingBatch(n={len(self._readings)}, bytes={self.total_bytes})"
