"""A minimal Sentilo-like open-data platform facade.

Sentilo is the real platform managing Barcelona's municipal sensor data; in
the paper it represents the *centralized cloud* point of comparison.  This
module provides a small in-process stand-in with the pieces the experiments
exercise: provider/sensor registration, observation ingestion, a catalog
endpoint, and per-category statistics that the traffic benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, ValidationError
from repro.sensors.catalog import SensorCatalog, SensorCategory
from repro.sensors.readings import Reading, ReadingBatch


@dataclass
class ProviderRecord:
    """A data provider registered on the platform (e.g. a city department)."""

    provider_id: str
    description: str = ""
    sensor_ids: List[str] = field(default_factory=list)


@dataclass
class SensorRecord:
    """A sensor registered on the platform."""

    sensor_id: str
    sensor_type: str
    category: str
    provider_id: str
    location: Optional[str] = None


class SentiloPlatform:
    """In-process Sentilo-like platform used by the centralized baseline.

    The platform stores every ingested observation (it models the cloud's
    effectively unlimited storage), tracks ingestion volume per category,
    and exposes simple query endpoints mirroring Sentilo's REST API surface:
    latest observation per sensor, observations in a time window, and the
    sensor catalog.
    """

    def __init__(self, catalog: Optional[SensorCatalog] = None) -> None:
        self.catalog = catalog
        self._providers: Dict[str, ProviderRecord] = {}
        self._sensors: Dict[str, SensorRecord] = {}
        self._observations: Dict[str, List[Reading]] = {}
        self._ingested_bytes_by_category: Dict[str, int] = {}
        self._ingested_count = 0

    # ------------------------------------------------------------------ #
    # Registration (Sentilo "catalog" API)
    # ------------------------------------------------------------------ #
    def register_provider(self, provider_id: str, description: str = "") -> ProviderRecord:
        if provider_id in self._providers:
            raise ConfigurationError(f"provider already registered: {provider_id}")
        record = ProviderRecord(provider_id=provider_id, description=description)
        self._providers[provider_id] = record
        return record

    def register_sensor(
        self,
        sensor_id: str,
        sensor_type: str,
        category: str,
        provider_id: str,
        location: Optional[str] = None,
    ) -> SensorRecord:
        if provider_id not in self._providers:
            raise ConfigurationError(f"unknown provider: {provider_id}")
        if sensor_id in self._sensors:
            raise ConfigurationError(f"sensor already registered: {sensor_id}")
        if self.catalog is not None and sensor_type not in self.catalog:
            raise ConfigurationError(f"sensor type not in catalog: {sensor_type}")
        record = SensorRecord(
            sensor_id=sensor_id,
            sensor_type=sensor_type,
            category=category,
            provider_id=provider_id,
            location=location,
        )
        self._sensors[sensor_id] = record
        self._providers[provider_id].sensor_ids.append(sensor_id)
        return record

    @property
    def providers(self) -> List[ProviderRecord]:
        return list(self._providers.values())

    @property
    def sensors(self) -> List[SensorRecord]:
        return list(self._sensors.values())

    # ------------------------------------------------------------------ #
    # Ingestion (Sentilo "data" API)
    # ------------------------------------------------------------------ #
    def publish_observation(self, reading: Reading, require_registered: bool = False) -> None:
        """Ingest one observation.

        When *require_registered* is true, observations from unregistered
        sensors are rejected (matching a strictly configured platform).
        """
        if require_registered and reading.sensor_id not in self._sensors:
            raise ValidationError(f"observation from unregistered sensor: {reading.sensor_id}")
        self._observations.setdefault(reading.sensor_id, []).append(reading)
        self._ingested_bytes_by_category[reading.category] = (
            self._ingested_bytes_by_category.get(reading.category, 0) + reading.size_bytes
        )
        self._ingested_count += 1

    def publish_batch(self, batch: ReadingBatch, require_registered: bool = False) -> int:
        """Ingest every reading in *batch*; returns the number ingested."""
        for reading in batch:
            self.publish_observation(reading, require_registered=require_registered)
        return len(batch)

    # ------------------------------------------------------------------ #
    # Query (Sentilo "data" read API)
    # ------------------------------------------------------------------ #
    def latest(self, sensor_id: str) -> Optional[Reading]:
        """Most recent observation of *sensor_id*, or ``None``."""
        observations = self._observations.get(sensor_id)
        if not observations:
            return None
        return max(observations, key=lambda r: r.timestamp)

    def observations(
        self,
        sensor_id: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[Reading]:
        """Observations of *sensor_id* with ``since <= timestamp < until``."""
        return [
            r
            for r in self._observations.get(sensor_id, [])
            if since <= r.timestamp < until
        ]

    def observation_count(self) -> int:
        return self._ingested_count

    # ------------------------------------------------------------------ #
    # Statistics used by the traffic benchmarks
    # ------------------------------------------------------------------ #
    def ingested_bytes(self, category: Optional[SensorCategory | str] = None) -> int:
        """Bytes ingested overall or for one category."""
        if category is None:
            return sum(self._ingested_bytes_by_category.values())
        key = category.value if isinstance(category, SensorCategory) else category
        return self._ingested_bytes_by_category.get(key, 0)

    def ingested_bytes_by_category(self) -> Dict[str, int]:
        return dict(self._ingested_bytes_by_category)
