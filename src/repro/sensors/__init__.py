"""Sensor substrate: a Sentilo-like catalog and synthetic reading sources.

The paper's evaluation is driven by the municipal open-data platform of
Barcelona (Sentilo).  We do not have access to the real platform, so this
package provides:

* :mod:`repro.sensors.catalog` — the sensor inventory of the *future* smart
  city of Barcelona exactly as parameterised in the paper's Table I
  (categories, types, sensor counts, message sizes, sampling rates, and the
  per-category redundancy rates the authors measured from real Sentilo data).
* :mod:`repro.sensors.readings` — the reading/observation data model.
* :mod:`repro.sensors.device` — individual simulated sensor devices.
* :mod:`repro.sensors.generator` — bulk synthetic stream generation with a
  controllable duplicate (redundant-reading) fraction.
* :mod:`repro.sensors.sentilo` — a minimal Sentilo-like platform facade used
  by the centralized-cloud baseline.
"""

from repro.sensors.catalog import (
    BARCELONA_CATALOG,
    CATEGORY_REDUNDANCY,
    SensorCategory,
    SensorCatalog,
    SensorTypeSpec,
)
from repro.sensors.device import Sensor
from repro.sensors.generator import ReadingGenerator
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns
from repro.sensors.sentilo import SentiloPlatform

__all__ = [
    "BARCELONA_CATALOG",
    "CATEGORY_REDUNDANCY",
    "Reading",
    "ReadingBatch",
    "ReadingColumns",
    "ReadingGenerator",
    "Sensor",
    "SensorCatalog",
    "SensorCategory",
    "SensorTypeSpec",
    "SentiloPlatform",
]
