"""Individual simulated sensor devices.

A :class:`Sensor` models one physical device of a catalog type: it has a
location (the fog layer-1 area it falls into), a sampling interval, and emits
:class:`~repro.sensors.readings.Reading` objects whose values follow a simple
random walk quantised to the type's resolution.  Consecutive identical values
are what the redundant-data-elimination aggregation later removes, so the
device can be tuned to produce a target duplicate fraction.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, Optional

from repro.common.errors import ConfigurationError
from repro.sensors.catalog import SensorTypeSpec
from repro.sensors.readings import Reading


class Sensor:
    """One simulated sensor device.

    Parameters
    ----------
    sensor_id:
        Unique identifier of the device.
    spec:
        The catalog type this device belongs to.
    fog_node_id:
        Identifier of the fog layer-1 node covering the device's location.
    duplicate_probability:
        Probability that a new sample repeats the previous value exactly.
        Defaults to the type's category redundancy rate so a population of
        devices reproduces the duplicate fraction the paper measured.
    rng:
        Random source; pass a seeded ``random.Random`` for reproducibility.
    """

    def __init__(
        self,
        sensor_id: str,
        spec: SensorTypeSpec,
        fog_node_id: Optional[str] = None,
        duplicate_probability: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sensor_id = sensor_id
        self.spec = spec
        self.fog_node_id = fog_node_id
        if duplicate_probability is None:
            duplicate_probability = spec.redundancy_rate
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ConfigurationError("duplicate_probability must be in [0, 1]")
        self.duplicate_probability = duplicate_probability
        # CRC-32 rather than hash(): the builtin string hash is salted per
        # interpreter run, which would make default-seeded devices emit
        # different streams across processes.
        self._rng = rng if rng is not None else random.Random(zlib.crc32(sensor_id.encode("utf-8")))
        self._last_value: Optional[float] = None
        self._sequence = 0

    def _quantise(self, value: float) -> float:
        step = self.spec.value_resolution
        low, high = self.spec.value_range
        clipped = min(max(value, low), high)
        return round(round(clipped / step) * step, 6)

    def _next_value(self) -> float:
        low, high = self.spec.value_range
        if self._last_value is None:
            return self._quantise(self._rng.uniform(low, high))
        if self._rng.random() < self.duplicate_probability:
            return self._last_value
        # Random walk: step is a few resolution units in either direction.
        step = self.spec.value_resolution * self._rng.choice([-3, -2, -1, 1, 2, 3])
        return self._quantise(self._last_value + step)

    def sample(self, timestamp: float) -> Reading:
        """Produce one reading at simulation time *timestamp*."""
        value = self._next_value()
        self._last_value = value
        reading = Reading(
            sensor_id=self.sensor_id,
            sensor_type=self.spec.name,
            category=self.spec.category.value,
            value=value,
            timestamp=timestamp,
            fog_node_id=self.fog_node_id,
            size_bytes=self.spec.message_size_bytes,
            sequence=self._sequence,
        )
        self._sequence += 1
        return reading

    def stream(self, start: float, end: float) -> Iterator[Reading]:
        """Yield readings at the type's sampling interval in ``[start, end)``."""
        if end < start:
            raise ConfigurationError("end must not precede start")
        interval = self.spec.sampling_interval_seconds
        timestamp = start
        while timestamp < end:
            yield self.sample(timestamp)
            timestamp += interval

    @property
    def samples_emitted(self) -> int:
        """Number of readings emitted by this device so far."""
        return self._sequence

    def __repr__(self) -> str:
        return (
            f"Sensor(id={self.sensor_id!r}, type={self.spec.name!r}, "
            f"fog_node={self.fog_node_id!r})"
        )
