"""The invariant auditor registry: every scenario run, audited the same way.

Each auditor is a pure function over a finished
:class:`~repro.scenarios.executor.ScenarioRun` (plus the committed digest
table) returning an :class:`InvariantResult` — ``pass``, ``fail`` (with
every violated check named), or ``n/a`` when the invariant does not apply
to the scenario (e.g. durability on a memory-only run).  The registry is
ordered; :func:`audit` runs all of it and never short-circuits, so one
report shows every violation at once.

The invariants:

* **conservation** — readings are never lost silently: offered equals
  ingested plus every *counted* loss (shed, dropped payloads, corrupt
  frames), and the unified ledger's per-tier aggregates agree — what fog
  layer 1 ingested reached fog layer 2 and the cloud, with nothing left
  pending after the final sync.
* **query_completeness** — the full-window query returns exactly the
  surviving rows with consistent per-tier attribution; isolated (outaged)
  stores never serve; mid-run probes stay attribution-consistent.
* **determinism** — the run reproduces its committed per-scenario digest;
  fault-free golden-workload scenarios reproduce the golden cloud digest.
* **durability** — post-crash ``recover()`` lands exactly on the last
  fsync'd boundary: same digest, no torn records, nothing at-risk
  resurrected.
* **availability** — the injector's report tracks the schedule: outages
  dip section availability unless failover covers them, recovery restores
  it, and the final state matches the net schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.scenarios.executor import ScenarioRun

#: Auditor signature: (run, committed digest table) -> InvariantResult.
Auditor = Callable[[ScenarioRun, Dict[str, Any]], "InvariantResult"]

INVARIANTS = (
    "conservation",
    "query_completeness",
    "determinism",
    "durability",
    "availability",
)


@dataclass(frozen=True)
class InvariantResult:
    """One cell of the scenario × invariant matrix."""

    name: str
    status: str  # "pass" | "fail" | "n/a"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"


def _result(name: str, failures: List[str], detail: str = "") -> InvariantResult:
    if failures:
        return InvariantResult(name=name, status="fail", detail="; ".join(failures))
    return InvariantResult(name=name, status="pass", detail=detail)


# --------------------------------------------------------------------- #
# Conservation
# --------------------------------------------------------------------- #
def check_conservation(run: ScenarioRun, committed: Dict[str, Any]) -> InvariantResult:
    failures: List[str] = []
    ledger = run.health["conservation"]
    tiers = ledger["tiers"]
    scenario = run.scenario
    sharded = scenario.transport == "sharded"

    fog1 = tiers.get("fog_layer_1", {})
    fog2 = tiers.get("fog_layer_2", {})
    cloud = tiers.get("cloud", {})
    ingested = fog1.get("ingested_readings", 0)

    rejected = fog1.get("rejected_readings", 0)
    if not sharded:
        offered = run.serve_stats["readings_offered"]
        counted_losses = run.expected_corrupt_loss
        if scenario.transport == "broker-csv":
            # The CSV wire is 1:1 message-per-reading: every shed message
            # and every dropped payload is exactly one reading.
            counted_losses += ledger["shed_messages"] + ledger["dropped_payloads"]
        # Acquisition refusals (quality bar, aggregation) are the one
        # sanctioned non-transport sink between "offered" and "ingested".
        if offered != run.serve_stats["readings_ingested"] + counted_losses + rejected:
            failures.append(
                f"offered {offered} != ingested {run.serve_stats['readings_ingested']} "
                f"+ counted losses {counted_losses} + acquisition-rejected {rejected}"
            )
        if ingested != run.serve_stats["readings_ingested"]:
            failures.append(
                f"fog L1 ledger ingested {ingested} != serve counter "
                f"{run.serve_stats['readings_ingested']}"
            )
        if run.expected_corrupt_loss and ledger["dropped_payloads"] == 0:
            failures.append("corrupt frames were injected but none were counted as dropped")
    else:
        kills = sum(1 for event in scenario.events if event.kind == "worker_kill")
        if run.health["worker_restarts"] < kills:
            failures.append(
                f"{kills} worker kills scheduled but only "
                f"{run.health['worker_restarts']} restarts recorded"
            )

    # Tier flow: everything fog L1 ingested reached fog L2 and the cloud,
    # and nothing is still pending after the final sync.
    for tier_name, tier in (("fog_layer_1", fog1), ("fog_layer_2", fog2), ("cloud", cloud)):
        if tier.get("pending_upward", 0) != 0:
            failures.append(f"{tier_name} pending_upward {tier['pending_upward']} != 0")
    if fog2.get("ingested_readings") != ingested:
        failures.append(
            f"fog L2 ingested {fog2.get('ingested_readings')} != fog L1 ingested {ingested}"
        )
    if cloud.get("ingested_readings") != ingested:
        failures.append(
            f"cloud ingested {cloud.get('ingested_readings')} != fog L1 ingested {ingested}"
        )
    if run.cloud_rows != ingested:
        failures.append(f"cloud rows {run.cloud_rows} != ingested {ingested}")

    # The ledger's total must agree with its own parts (alias consistency).
    expected_total = (
        ledger["dropped_payloads"]
        + ledger["dropped_ipc_frames"]
        + ledger["shed_messages"]
        + ledger["dropped_log_records"]
    )
    if ledger["total_counted_losses"] != expected_total:
        failures.append(
            f"ledger total {ledger['total_counted_losses']} != sum of parts {expected_total}"
        )
    return _result(
        "conservation",
        failures,
        detail=f"ingested={ingested}, losses={ledger['total_counted_losses']}",
    )


# --------------------------------------------------------------------- #
# Query completeness
# --------------------------------------------------------------------- #
def check_query_completeness(run: ScenarioRun, committed: Dict[str, Any]) -> InvariantResult:
    failures: List[str] = []
    final = run.final_query
    rows = final["rows"]
    if rows != run.cloud_rows:
        failures.append(f"full-window query rows {rows} != surviving cloud rows {run.cloud_rows}")
    if sum(final["rows_by_tier"].values()) != rows:
        failures.append("per-tier row attribution does not sum to the result size")
    if sum(source["rows"] for source in final["sources"]) != rows:
        failures.append("per-source row attribution does not sum to the result size")
    serving = {source["node_id"] for source in final["sources"] if source["rows"]}
    for node_id in run.isolated_nodes:
        if node_id in serving:
            failures.append(f"isolated store {node_id} served rows instead of falling through")
    for probe in run.midrun_queries:
        if sum(probe["rows_by_tier"].values()) != probe["rows"]:
            failures.append(
                f"round {probe['round_index']}: mid-run tier attribution inconsistent"
            )
        if sum(source["rows"] for source in probe["sources"]) != probe["rows"]:
            failures.append(
                f"round {probe['round_index']}: mid-run source attribution inconsistent"
            )
    return _result(
        "query_completeness",
        failures,
        detail=f"rows={rows}, probes={len(run.midrun_queries)}",
    )


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #
def check_determinism(run: ScenarioRun, committed: Dict[str, Any]) -> InvariantResult:
    failures: List[str] = []
    name = run.scenario.name
    expected = committed.get("scenarios", {}).get(name)
    if expected is None:
        failures.append(
            f"no committed digest for scenario {name!r}; run "
            "`python -m repro scenarios --update-digests` and commit the diff"
        )
    elif run.digest != expected:
        failures.append(f"digest {run.digest} != committed {expected}")
    if run.scenario.expect_golden:
        golden = committed.get("golden_cloud_sha256")
        if golden is None:
            failures.append("digest table has no golden_cloud_sha256 entry")
        elif run.digest != golden:
            failures.append(f"fault-free digest {run.digest} != golden {golden}")
    return _result("determinism", failures, detail=run.digest[:12])


# --------------------------------------------------------------------- #
# Durability
# --------------------------------------------------------------------- #
def check_durability(run: ScenarioRun, committed: Dict[str, Any]) -> InvariantResult:
    if not run.scenario.durable:
        return InvariantResult(name="durability", status="n/a", detail="memory-only scenario")
    failures: List[str] = []
    durable = run.health.get("durable", {})
    if not durable.get("enabled"):
        failures.append("scenario is durable but the run reports durable logs disabled")
    if run.scenario.wants_recovery():
        if run.recovered_digest != run.boundary_digest:
            failures.append(
                f"recovered digest {run.recovered_digest} != boundary {run.boundary_digest}"
            )
        recovered = run.recovered_durable or {}
        if recovered.get("dropped_log_records", 0) != 0:
            failures.append(
                f"recovery dropped {recovered.get('dropped_log_records')} log records"
            )
        if recovered.get("replayed_rows", 0) <= 0:
            failures.append("recovery replayed no rows")
        if run.at_risk_readings <= 0:
            failures.append("crash_recover scheduled but no at-risk data was ingested")
    return _result(
        "durability",
        failures,
        detail=f"at_risk={run.at_risk_readings}, replayed="
        f"{(run.recovered_durable or {}).get('replayed_rows', 0)}",
    )


# --------------------------------------------------------------------- #
# Availability
# --------------------------------------------------------------------- #
def check_availability(run: ScenarioRun, committed: Dict[str, Any]) -> InvariantResult:
    failures: List[str] = []
    report = run.health["availability"]
    total = report["total_sections"]
    if not 0 <= report["served_sections"] <= total:
        failures.append("served_sections out of range")
    if report["cloud_path_availability"] != 1.0:
        failures.append(
            f"cloud path availability {report['cloud_path_availability']} != 1.0 "
            "(no scenario fails fog L2 or the backhaul)"
        )
    # Replay the schedule to derive the expected final state: an outage
    # darkens its section unless failover covered it or recovery undid it.
    dark: set = set()
    for event in run.scenario.events:
        if event.kind == "fog1_outage":
            if not event.failover:
                dark.add(event.node_id)
        elif event.kind == "fog1_recovery":
            dark.discard(event.node_id)
    expected_served = total - len(dark)
    if report["served_sections"] != expected_served:
        failures.append(
            f"served_sections {report['served_sections']} != expected {expected_served}"
        )
    # Snapshots taken at each event must show the dip/restore live.
    for applied in run.events_applied:
        snapshot = applied["availability"]
        availability = snapshot["section_availability"]
        if not 0.0 <= availability <= 1.0:
            failures.append(f"{applied['kind']}: availability {availability} out of range")
        if applied["kind"] == "fog1_outage":
            event = next(
                e
                for e in run.scenario.events
                if e.kind == "fog1_outage" and e.node_id == applied["node_id"]
            )
            if event.failover and availability != 1.0:
                failures.append(
                    f"failover of {applied['node_id']} left availability {availability}"
                )
            if not event.failover and availability >= 1.0:
                failures.append(
                    f"outage of {applied['node_id']} did not dip availability"
                )
        if applied["kind"] == "fog1_recovery" and snapshot["failed_fog1_nodes"] != 0:
            # All scenarios schedule one outage at a time; after its
            # recovery no fog L1 node may remain failed.
            failures.append(
                f"recovery of {applied['node_id']} left "
                f"{snapshot['failed_fog1_nodes']} nodes failed"
            )
    return _result(
        "availability",
        failures,
        detail=f"sections={report['served_sections']}/{total}",
    )


REGISTRY: Dict[str, Auditor] = {
    "conservation": check_conservation,
    "query_completeness": check_query_completeness,
    "determinism": check_determinism,
    "durability": check_durability,
    "availability": check_availability,
}


def audit(run: ScenarioRun, committed: Dict[str, Any]) -> List[InvariantResult]:
    """Run every registered auditor over *run*; never short-circuits."""
    return [REGISTRY[name](run, committed) for name in INVARIANTS]
