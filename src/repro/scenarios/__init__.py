"""Declarative scenario & chaos engine with invariant auditing.

The subsystem composes machinery the repo already has — the serve mode's
virtual clock, the :class:`~repro.core.faults.FailureInjector`, scheduled
worker kills, the broker's shed/partition/corruption counters, durable
segment logs — into scripted, seeded, *auditable* runs:

* :mod:`~repro.scenarios.spec` — frozen :class:`Scenario` /
  :class:`FaultEvent` descriptions (load shape × transport × fault
  schedule), validated at construction.
* :mod:`~repro.scenarios.executor` — :func:`run_scenario` drives a spec
  through the serve runtime's narrow chaos hooks and returns a
  :class:`ScenarioRun` of observations.
* :mod:`~repro.scenarios.invariants` — the auditor registry
  (:data:`INVARIANTS`); :func:`audit` checks conservation, query
  completeness, determinism, durability, and availability.
* :mod:`~repro.scenarios.runner` — :func:`run_matrix` over
  :data:`DEFAULT_SCENARIOS`, rendering the scenario × invariant matrix
  (``python -m repro scenarios``).
"""

from repro.scenarios.executor import ScenarioRun, run_scenario
from repro.scenarios.invariants import INVARIANTS, InvariantResult, audit
from repro.scenarios.runner import (
    DEFAULT_SCENARIOS,
    DIGESTS_PATH,
    MatrixReport,
    ScenarioReport,
    load_digests,
    run_matrix,
    select_scenarios,
)
from repro.scenarios.spec import EVENT_KINDS, LOAD_SHAPES, FaultEvent, Scenario

__all__ = [
    "DEFAULT_SCENARIOS",
    "DIGESTS_PATH",
    "EVENT_KINDS",
    "INVARIANTS",
    "LOAD_SHAPES",
    "FaultEvent",
    "InvariantResult",
    "MatrixReport",
    "Scenario",
    "ScenarioReport",
    "ScenarioRun",
    "audit",
    "load_digests",
    "run_matrix",
    "run_scenario",
    "select_scenarios",
]
