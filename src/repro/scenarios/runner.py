"""The scenario matrix runner: execute, audit, and report.

:data:`DEFAULT_SCENARIOS` is the committed matrix — nine seeded scenarios
covering every load shape, four transports, and every fault-event kind.
:func:`run_matrix` executes a selection, audits each run against the full
invariant registry, and returns a :class:`MatrixReport` that renders as a
scenario × invariant table (or JSON via :meth:`MatrixReport.as_dict`).

Per-scenario digests are committed in ``data/digests.json`` next to this
module; ``python -m repro scenarios --update-digests`` regenerates the
table from a fresh run (commit the diff deliberately — a changed digest
means a changed data plane).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.scenarios.executor import ScenarioRun, run_scenario
from repro.scenarios.invariants import INVARIANTS, InvariantResult, audit
from repro.scenarios.spec import FaultEvent, Scenario

DIGESTS_PATH = Path(__file__).resolve().parent / "data" / "digests.json"

#: The section the chaos scenarios target (first section of the default
#: city) and its first-sibling failover target — stable facts of the
#: deployment model, spelled out here so the schedule reads literally.
_TARGET_NODE = "fog1/district-01/section-01"

DEFAULT_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="steady-direct",
        load="steady",
        transport="direct",
        description="Golden workload over the in-process path; the control run.",
        expect_golden=True,
    ),
    Scenario(
        name="steady-frames-v2",
        load="steady",
        transport="frames-binary-v2",
        description="Golden workload over shared-dictionary v2 frames; must match golden.",
        expect_golden=True,
    ),
    Scenario(
        name="diurnal-stream",
        load="diurnal",
        transport="direct",
        description="Every device at its natural cadence, synced per round bucket.",
    ),
    Scenario(
        name="mobile-spread",
        load="mobile-sensor",
        transport="direct",
        description="No fixed homes: every sensor routed by the stable CRC-32 spread.",
    ),
    Scenario(
        name="burst-inbox-squeeze",
        load="burst",
        transport="broker-csv",
        inbox_limit=2,
        description="Tight rounds into 2-message inboxes; overflow sheds, counted.",
    ),
    Scenario(
        name="broker-partition",
        load="steady",
        transport="broker-csv",
        events=(
            FaultEvent(kind="broker_partition", round_index=1, node_id=_TARGET_NODE),
            FaultEvent(kind="broker_heal", round_index=3, node_id=_TARGET_NODE),
        ),
        description="One fog node cut off for two rounds; its messages shed, counted.",
    ),
    Scenario(
        name="corrupt-frame-storm",
        load="steady",
        transport="frames-binary-v2",
        events=(FaultEvent(kind="corrupt_round", round_index=2),),
        description="Every frame of round 2 bit-flipped; CRC rejects all, counted.",
    ),
    Scenario(
        name="fog-outage-failover",
        load="steady",
        transport="direct",
        events=(
            FaultEvent(
                kind="fog1_outage", round_index=2, node_id=_TARGET_NODE, failover=True
            ),
            FaultEvent(kind="fog1_recovery", round_index=3, node_id=_TARGET_NODE),
        ),
        description="Mid-run node outage with failover to a sibling, then recovery.",
    ),
    Scenario(
        name="sharded-worker-crash",
        load="steady",
        transport="sharded",
        workers=2,
        events=(FaultEvent(kind="worker_kill", round_index=1, shard_index=0),),
        description="A worker dies after round 1; restart-from-seed reproduces golden.",
        expect_golden=True,
    ),
    Scenario(
        name="crash-recover-durable",
        load="steady",
        transport="direct",
        durable=True,
        events=(FaultEvent(kind="crash_recover"),),
        description="Durable run, crash with un-synced data, recover() to the boundary.",
        expect_golden=True,
    ),
)


def load_digests(path: Optional[Path] = None) -> Dict[str, Any]:
    """The committed per-scenario digest table (empty when missing)."""
    digest_path = DIGESTS_PATH if path is None else path
    if not digest_path.exists():
        return {"scenarios": {}}
    with digest_path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_digests(table: Dict[str, Any], path: Optional[Path] = None) -> None:
    digest_path = DIGESTS_PATH if path is None else path
    digest_path.parent.mkdir(parents=True, exist_ok=True)
    with digest_path.open("w", encoding="utf-8") as handle:
        json.dump(table, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class ScenarioReport:
    """One audited scenario: the run plus its invariant verdicts."""

    run: ScenarioRun
    invariants: List[InvariantResult]

    @property
    def name(self) -> str:
        return self.run.scenario.name

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.invariants)

    def as_dict(self) -> Dict[str, Any]:
        scenario = self.run.scenario
        return {
            "name": scenario.name,
            "load": scenario.load,
            "transport": scenario.transport,
            "events": [event.kind for event in scenario.events],
            "digest": self.run.digest,
            "cloud_rows": self.run.cloud_rows,
            "ok": self.ok,
            "invariants": {
                result.name: {"status": result.status, "detail": result.detail}
                for result in self.invariants
            },
        }


@dataclass
class MatrixReport:
    """The scenario × invariant matrix of one runner invocation."""

    reports: List[ScenarioReport] = field(default_factory=list)
    updated_digests: bool = False

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "invariants": list(INVARIANTS),
            "scenarios": [report.as_dict() for report in self.reports],
            "ok": self.ok,
            "updated_digests": self.updated_digests,
        }

    def render(self) -> str:
        """The human-readable matrix (one row per scenario)."""
        marks = {"pass": "pass", "fail": "FAIL", "n/a": "-"}
        name_width = max([len(r.name) for r in self.reports] + [len("scenario")])
        columns = [name_width] + [max(len(name), 4) for name in INVARIANTS]
        header = ["scenario"] + list(INVARIANTS)
        lines = [
            "  ".join(title.ljust(width) for title, width in zip(header, columns)),
            "  ".join("-" * width for width in columns),
        ]
        for report in self.reports:
            cells = [report.name.ljust(columns[0])]
            for result, width in zip(report.invariants, columns[1:]):
                cells.append(marks[result.status].ljust(width))
            lines.append("  ".join(cells))
        lines.append("")
        failed = [report for report in self.reports if not report.ok]
        for report in failed:
            for result in report.invariants:
                if not result.ok:
                    lines.append(f"FAIL {report.name} / {result.name}: {result.detail}")
        verdict = "ALL INVARIANTS HOLD" if self.ok else f"{len(failed)} SCENARIO(S) FAILED"
        lines.append(
            f"{verdict} ({len(self.reports)} scenarios x {len(INVARIANTS)} invariants)"
        )
        return "\n".join(lines)


def select_scenarios(
    scenarios: Sequence[Scenario], select: Optional[str] = None
) -> List[Scenario]:
    """Substring-filter *scenarios* by name (all of them when no filter)."""
    if not select:
        return list(scenarios)
    chosen = [scenario for scenario in scenarios if select in scenario.name]
    if not chosen:
        raise ConfigurationError(
            f"no scenario matches {select!r}; available: "
            + ", ".join(scenario.name for scenario in scenarios)
        )
    return chosen


def run_matrix(
    scenarios: Optional[Sequence[Scenario]] = None,
    *,
    select: Optional[str] = None,
    processes: bool = False,
    update_digests: bool = False,
    digests_path: Optional[Path] = None,
) -> MatrixReport:
    """Execute and audit a scenario matrix.

    ``update_digests=True`` rewrites the committed digest table from this
    run's observed digests (golden scenarios must still agree with the
    golden digest, which is preserved) before auditing, so the audit that
    follows proves the new table is self-consistent.
    """
    chosen = select_scenarios(DEFAULT_SCENARIOS if scenarios is None else scenarios, select)
    runs = [run_scenario(scenario, processes=processes) for scenario in chosen]
    committed = load_digests(digests_path)
    if update_digests:
        table = dict(committed)
        table.setdefault("scenarios", {})
        table["scenarios"] = dict(table["scenarios"])
        for run in runs:
            table["scenarios"][run.scenario.name] = run.digest
        golden_runs = [run for run in runs if run.scenario.expect_golden]
        if golden_runs and "golden_cloud_sha256" not in table:
            table["golden_cloud_sha256"] = golden_runs[0].digest
        save_digests(table, digests_path)
        committed = table
    report = MatrixReport(
        reports=[ScenarioReport(run=run, invariants=audit(run, committed)) for run in runs],
        updated_digests=update_digests,
    )
    return report
