"""The scenario executor: drive a spec through its schedule, faults and all.

One entry point, :func:`run_scenario`: build the scenario's pipeline,
serve its workload on a :class:`~repro.common.clock.VirtualClock`, inject
each scheduled :class:`~repro.scenarios.spec.FaultEvent` at its round
boundary (through the narrow hooks the serve/sharded runtimes expose —
``round_hook``, ``worker_faults``, the broker's ``partition`` /
``corrupt_next``, the :class:`~repro.core.faults.FailureInjector`), and
return a :class:`ScenarioRun` carrying everything the invariant auditors
need: the final health snapshot (with its unified conservation ledger),
the cloud digest, availability snapshots taken at each event, mid-run
query probes, and — for durable scenarios — the post-crash recovery
digests.

The executor *observes and injects*; it never asserts.  Auditing is the
:mod:`~repro.scenarios.invariants` registry's job, so every claim about a
run is made exactly once, in one place.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.pipeline import Pipeline
from repro.common.clock import VirtualClock
from repro.scenarios.spec import FaultEvent, Scenario


@dataclass
class ScenarioRun:
    """Everything observed while executing one scenario (auditor input)."""

    scenario: Scenario
    digest: str
    health: Dict[str, Any]
    serve_stats: Dict[str, Any]
    cloud_rows: int
    #: Readings the executor expects to have been lost to corrupted frames
    #: (whole-round corruption: the round's full offered count).
    expected_corrupt_loss: int = 0
    #: Per-event observations: kind, round, and the availability report
    #: taken immediately after the event was applied.
    events_applied: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-round query probes taken under the serve lock (attribution
    #: consistency while faults are live).
    midrun_queries: List[Dict[str, Any]] = field(default_factory=list)
    #: The final full-window query: row count, per-tier rows, sources.
    final_query: Dict[str, Any] = field(default_factory=dict)
    #: Fog L1 nodes whose local store was isolated by an outage (must not
    #: appear as final query sources).
    isolated_nodes: List[str] = field(default_factory=list)
    #: Failover records (as dicts) produced by outage events.
    failovers: List[Dict[str, Any]] = field(default_factory=list)
    #: Durable scenarios: digest at the drained boundary, digest after
    #: ``recover()``, and the recovered deployment's durable report.
    boundary_digest: Optional[str] = None
    recovered_digest: Optional[str] = None
    recovered_durable: Optional[Dict[str, Any]] = None
    #: Readings ingested *after* the boundary without a sync (at-risk data
    #: a correct recovery must NOT resurrect).
    at_risk_readings: int = 0


def _snapshot_query(result) -> Dict[str, Any]:
    return {
        "rows": len(result),
        "rows_by_tier": dict(result.rows_by_tier),
        "sources": [
            {"node_id": s.node_id, "tier": s.tier, "rows": s.rows} for s in result.sources
        ],
        "cache_hit": result.cache_hit,
    }


class _EventApplier:
    """Interprets round-keyed events against a live serve handle."""

    def __init__(self, scenario: Scenario, run: ScenarioRun) -> None:
        self.scenario = scenario
        self.run = run
        self.events_by_round: Dict[int, List[FaultEvent]] = {}
        for event in scenario.round_events():
            self.events_by_round.setdefault(event.round_index, []).append(event)

    # Called as the serve round hook: under the serve lock, immediately
    # before round *index* is ingested.
    def __call__(self, handle, index: int, readings) -> None:
        client = handle.client
        for event in self.events_by_round.get(index, ()):
            self._apply(event, client, readings)
            self.run.events_applied.append(
                {
                    "kind": event.kind,
                    "round_index": index,
                    "node_id": event.node_id,
                    "availability": client.injector.availability().as_dict(),
                }
            )
        # Probe the read side while the fault (if any) is live: the answer
        # must stay attribution-consistent at every round boundary.
        result = client.query()
        probe = _snapshot_query(result)
        probe["round_index"] = index
        self.run.midrun_queries.append(probe)

    def _apply(self, event: FaultEvent, client, readings) -> None:
        injector = client.injector
        system = client.system
        if event.kind == "fog1_outage":
            injector.fail_node(event.node_id)
            injector.isolate_node_store(event.node_id)
            self.run.isolated_nodes.append(event.node_id)
            if event.failover:
                records = injector.failover_node(event.node_id)
                for record in records:
                    self.run.failovers.append(
                        {
                            "section_id": record.section_id,
                            "failed_node": record.failed_node,
                            "replacement_node": record.replacement_node,
                            "readings_at_risk": record.readings_at_risk,
                            "bytes_at_risk": record.bytes_at_risk,
                        }
                    )
                    # Re-home the dark section's sensors onto the
                    # replacement node's section so the remaining rounds
                    # route through the real transport to the sibling.
                    replacement_section = system.fog1_node(record.replacement_node).section_id
                    for sensor_id in system.sensors_in_section(record.section_id):
                        system.assign_sensor(sensor_id, replacement_section)
        elif event.kind == "fog1_recovery":
            injector.recover_node(event.node_id)
        elif event.kind == "broker_partition":
            client.session.broker.partition(event.node_id)
        elif event.kind == "broker_heal":
            client.session.broker.heal(event.node_id)
        elif event.kind == "corrupt_round":
            # Corrupt every frame of this round: the frame count is the
            # number of sections the round's readings route to, and the
            # expected reading loss is the round's whole offered count —
            # CRC-protected frames guarantee rejection, never silent
            # mis-decode.
            frames = len(client.pipeline._route_per_section(readings, None))
            client.session.broker.corrupt_next(frames, seed=self.scenario.seed)
            self.run.expected_corrupt_loss += len(readings)


def run_scenario(
    scenario: Scenario,
    *,
    processes: bool = False,
    durable_dir: Optional[str] = None,
) -> ScenarioRun:
    """Execute *scenario* end to end and return the run's observations.

    Deterministic by construction: the workload is regenerated from the
    scenario's seed, pacing runs on a :class:`VirtualClock` (instant,
    seeded), and every fault lands at its scheduled round boundary — the
    same spec always produces the same cloud digest.

    ``durable_dir`` overrides the temporary directory durable scenarios
    write their segment logs to (they default to a fresh ``tempfile``
    directory, removed with the context).
    """
    if scenario.durable and durable_dir is None:
        with tempfile.TemporaryDirectory(prefix=f"scenario-{scenario.name}-") as tmp:
            return _run(scenario, processes=processes, durable_dir=tmp)
    return _run(scenario, processes=processes, durable_dir=durable_dir)


def _run(scenario: Scenario, *, processes: bool, durable_dir: Optional[str]) -> ScenarioRun:
    config = scenario.config(durable_dir, processes=processes)
    workload = scenario.workload()
    pipeline = Pipeline(config)
    run = ScenarioRun(
        scenario=scenario,
        digest="",
        health={},
        serve_stats={},
        cloud_rows=0,
    )
    applier = _EventApplier(scenario, run)
    handle = pipeline.serve(
        workload,
        clock=VirtualClock(start=workload.start, seed=scenario.seed),
        round_hook=None if scenario.transport == "sharded" else applier,
        worker_faults=scenario.worker_faults() or None,
    )
    with handle:
        handle.drain()
        # Re-freeze the stats overlay of every isolated store now that the
        # final sync has drained: the overlay taken mid-outage shows stale
        # pending counts, and conservation is audited on the final state.
        for node_id in run.isolated_nodes:
            handle.client.injector.isolate_node_store(node_id)
        run.health = handle.health()
        run.serve_stats = handle.stats()
        run.digest = handle.cloud_digest()
        run.final_query = _snapshot_query(handle.submit_query())
    client = handle.client
    run.cloud_rows = len(client.cloud_contents())
    if scenario.wants_recovery():
        _crash_and_recover(scenario, run, client, config)
    return run


def _crash_and_recover(scenario: Scenario, run: ScenarioRun, client, config) -> None:
    """The crash-and-``recover()`` leg of durable scenarios.

    The drained run's digest is the committed boundary.  Extra readings
    ingested *without* a sync stay in the fog L1 pending queues — the
    durable logs cover the broad tiers only, so they are exactly the
    at-risk data a node loses in a crash.  ``recover()`` over the same
    directory must land on the boundary: same digest, nothing at-risk
    silently resurrected.
    """
    from repro.api.client import recover
    from repro.sensors.catalog import BARCELONA_CATALOG
    from repro.sensors.generator import ReadingGenerator

    run.boundary_digest = run.digest
    generator = ReadingGenerator(
        BARCELONA_CATALOG,
        devices_per_type=scenario.devices_per_type,
        seed=scenario.seed + 1,
    )
    devices = generator.shard_devices(lambda index, device: True)
    extra = list(ReadingGenerator.transaction_for(devices, 7200.0))
    client.ingest(extra, now=7200.0)
    run.at_risk_readings = len(extra)
    recovered = recover(config)
    run.recovered_digest = recovered.cloud_digest()
    run.recovered_durable = recovered.system.durable_report()
