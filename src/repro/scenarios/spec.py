"""Declarative scenario specs: load shapes + fault schedules, all seeded.

A :class:`Scenario` is a frozen, validated description of one chaos run:
which workload shape to generate (``steady`` / ``burst`` / ``diurnal`` /
``mobile-sensor``), which transport to drive it through, and a schedule of
:class:`FaultEvent`\\ s keyed to virtual-clock rounds.  Specs carry no
behaviour beyond building their :class:`~repro.runtime.shards.ShardedWorkload`
and :class:`~repro.api.config.PipelineConfig`; the
:mod:`~repro.scenarios.executor` interprets the schedule, and the
:mod:`~repro.scenarios.invariants` registry audits the result.

Everything is derived from seeds — two runs of the same spec produce
byte-identical cloud digests, which is what makes per-scenario digests
committable (see ``data/digests.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.api.config import TRANSPORTS, PipelineConfig
from repro.common.errors import ConfigurationError
from repro.runtime.shards import ShardedWorkload, WorkerFault

#: The supported load shapes (the workload half of a scenario).
LOAD_SHAPES = ("steady", "burst", "diurnal", "mobile-sensor")

#: The supported fault-event kinds (the chaos half of a scenario).
EVENT_KINDS = (
    "fog1_outage",
    "fog1_recovery",
    "broker_partition",
    "broker_heal",
    "corrupt_round",
    "worker_kill",
    "crash_recover",
)

#: Transports whose frame payloads are CRC-protected end to end — the only
#: wires where a flipped byte is *guaranteed* to be rejected-and-counted
#: rather than silently decoded, so the only wires ``corrupt_round`` may
#: target.
_CRC_FRAME_TRANSPORTS = ("frames-binary", "frames-binary-v2")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, keyed to a virtual-clock round boundary.

    ``round_index`` is the zero-based round *before* which the event fires
    (the executor's round hook runs under the serve lock, so the fault
    lands atomically between rounds).  ``worker_kill`` is the exception:
    worker deaths are armed at construction time (the worker exits after
    ingesting round ``round_index``), and ``crash_recover`` fires after the
    run drains (ingest un-synced extra data, then ``recover()``).

    Target fields by kind:

    * ``fog1_outage`` — ``node_id`` (a fog L1 node); ``failover=True``
      additionally re-homes the section onto a healthy sibling.
    * ``fog1_recovery`` — ``node_id``.
    * ``broker_partition`` / ``broker_heal`` — ``node_id`` (fog L1 nodes
      are the broker clients).
    * ``worker_kill`` — ``shard_index``.
    * ``corrupt_round`` / ``crash_recover`` — no target.
    """

    kind: str
    round_index: int = 0
    node_id: Optional[str] = None
    failover: bool = False
    shard_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown fault event kind: {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.round_index < 0:
            raise ConfigurationError("round_index must be non-negative")
        if self.kind in ("fog1_outage", "fog1_recovery", "broker_partition", "broker_heal"):
            if not self.node_id:
                raise ConfigurationError(f"{self.kind} events require node_id")
        if self.failover and self.kind != "fog1_outage":
            raise ConfigurationError("failover is only meaningful on fog1_outage events")
        if self.shard_index < 0:
            raise ConfigurationError("shard_index must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """One complete, seeded, auditable chaos run."""

    name: str
    load: str = "steady"
    transport: str = "direct"
    description: str = ""
    events: Tuple[FaultEvent, ...] = ()
    seed: int = 2024
    devices_per_type: int = 5
    workers: int = 2
    inbox_limit: Optional[int] = None
    durable: bool = False
    #: Fault-free scenarios over the golden workload must reproduce the
    #: golden cloud digest (``data/digests.json["golden_cloud_sha256"]``).
    expect_golden: bool = False
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenarios must be named")
        if self.load not in LOAD_SHAPES:
            raise ConfigurationError(
                f"unknown load shape: {self.load!r}; expected one of {LOAD_SHAPES}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(f"unknown transport: {self.transport!r}")
        round_count = self.workload().round_count()
        for event in self.events:
            self._validate_event(event, round_count)
        if self.inbox_limit is not None and self.transport not in (
            "broker-csv",
            "frames-json",
            "frames-binary",
            "frames-binary-v2",
        ):
            raise ConfigurationError("inbox_limit requires a broker transport")

    def _validate_event(self, event: FaultEvent, round_count: int) -> None:
        sharded = self.transport == "sharded"
        if event.kind == "worker_kill":
            if not sharded:
                raise ConfigurationError("worker_kill events require the sharded transport")
            if event.shard_index >= self.workers:
                raise ConfigurationError(
                    f"worker_kill targets shard {event.shard_index}, "
                    f"but the scenario runs {self.workers} workers"
                )
        elif sharded:
            raise ConfigurationError(
                f"{event.kind} events fire at round boundaries, which the sharded "
                "transport does not expose; only worker_kill is schedulable there"
            )
        if event.kind in ("broker_partition", "broker_heal") and self.transport != "broker-csv":
            # Only the CSV wire is 1:1 message-per-reading, which is what
            # makes partition losses exactly attributable to readings.
            raise ConfigurationError(f"{event.kind} events require the broker-csv transport")
        if event.kind == "corrupt_round" and self.transport not in _CRC_FRAME_TRANSPORTS:
            # CRC-protected frames are the only payloads where a byte flip
            # is guaranteed to be rejected-and-counted, never silently
            # decoded into wrong data.
            raise ConfigurationError(
                f"corrupt_round events require a CRC-protected frame transport "
                f"({', '.join(_CRC_FRAME_TRANSPORTS)})"
            )
        if event.kind == "crash_recover" and not self.durable:
            raise ConfigurationError("crash_recover events require durable=True")
        if event.kind not in ("crash_recover",) and event.round_index >= round_count:
            raise ConfigurationError(
                f"{event.kind} at round {event.round_index} is beyond the workload's "
                f"{round_count} rounds"
            )

    # ------------------------------------------------------------------ #
    # Derived pieces
    # ------------------------------------------------------------------ #
    def workload(self) -> ShardedWorkload:
        """The seeded workload this scenario's load shape describes.

        * ``steady`` — the golden-fixture shape: evenly spaced measurement
          rounds, one sync covering all of them.
        * ``burst`` — the same population firing tightly packed rounds
          (60 s apart) with two sync points, so the broker sees its load
          arrive in bursts between barriers.
        * ``diurnal`` — the stream shape: every device samples at its
          type's natural cadence over one hour, bucketed per round with a
          sync per bucket (the closest honest approximation of a daily
          cadence profile the seeded generator offers).
        * ``mobile-sensor`` — steady rounds with no fixed assignment: every
          device is routed by the stable CRC-32 spread, modelling sensors
          that belong to no section (the paper's mobile sensors).
        """
        if self.load == "steady":
            return ShardedWorkload(devices_per_type=self.devices_per_type, seed=self.seed)
        if self.load == "burst":
            return ShardedWorkload(
                devices_per_type=self.devices_per_type,
                seed=self.seed,
                rounds=6,
                interval=60.0,
                sync_plan=((3, 180.0), (6, 360.0)),
            )
        if self.load == "diurnal":
            return ShardedWorkload.stream_rounds(
                devices_per_type=self.devices_per_type, seed=self.seed
            )
        return ShardedWorkload(
            devices_per_type=self.devices_per_type, seed=self.seed, assignment="spread"
        )

    def config(
        self, durable_dir: Optional[str] = None, processes: bool = False
    ) -> PipelineConfig:
        """The pipeline config this scenario drives (see the executor).

        ``processes=True`` runs sharded scenarios over real forked workers
        instead of the in-process channels (identical protocol bytes).
        """
        if self.durable and durable_dir is None:
            raise ConfigurationError(f"scenario {self.name!r} is durable; pass durable_dir")
        kwargs = {"transport": self.transport}
        if self.transport == "sharded":
            kwargs["workers"] = self.workers
            kwargs["inline_workers"] = not processes
        if self.inbox_limit is not None:
            kwargs["serve_inbox_limit"] = self.inbox_limit
        if self.durable:
            kwargs["durable_dir"] = durable_dir
        return PipelineConfig(**kwargs)

    def worker_faults(self) -> Tuple[WorkerFault, ...]:
        """The construction-time kills ``worker_kill`` events schedule."""
        return tuple(
            WorkerFault(shard_index=event.shard_index, die_after_round=event.round_index)
            for event in self.events
            if event.kind == "worker_kill"
        )

    def round_events(self) -> Tuple[FaultEvent, ...]:
        """Events the executor's round hook interprets, in schedule order."""
        return tuple(
            event
            for event in self.events
            if event.kind not in ("worker_kill", "crash_recover")
        )

    def wants_recovery(self) -> bool:
        return any(event.kind == "crash_recover" for event in self.events)

    def is_faulty(self) -> bool:
        return bool(self.events)
