"""The unified write-side pipeline.

One engine, five transports.  :class:`Pipeline` owns the transport-level
ingest operations that used to live directly on
:class:`~repro.core.architecture.F2CDataManagement` — direct batch ingest,
broker CSV delivery (per-message and batched), column-frame publishing and
flushing — plus the config-driven porcelain on top:

* :meth:`Pipeline.session` returns an :class:`IngestSession` whose single
  ``ingest()`` verb drives readings through whatever transport the frozen
  :class:`~repro.api.config.PipelineConfig` selects;
* :meth:`Pipeline.run` executes a whole declarative seeded workload
  (:class:`~repro.runtime.shards.ShardedWorkload`) through the configured
  transport — including ``sharded(N)``, which delegates to the
  multi-process runtime — and returns an
  :class:`~repro.api.client.F2CClient` over the finished deployment.

The deprecated ``F2CDataManagement.ingest_readings`` /
``ingest_columns`` / ``attach_broker`` / ``flush_broker`` /
``publish_frames`` shims delegate here, so every legacy entry point and the
new facade run the identical code path — that is what keeps the golden
byte-accounting fixtures reproducible from either surface.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.city.barcelona import fog1_node_id
from repro.common.errors import ConfigurationError, RoutingError
from repro.common.serialization import FRAME_FORMATS, decode_csv_line
from repro.messaging.broker import Broker, Message
from repro.network.topology import LayerName
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns

from repro.api.config import PipelineConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.client import F2CClient
    from repro.api.serving import ServeHandle
    from repro.core.architecture import F2CDataManagement
    from repro.runtime.shards import ShardedWorkload


class Pipeline:
    """Transport engine bound to one F2C deployment.

    Construct with a frozen :class:`PipelineConfig` (the deployment is
    built lazily from *catalog*/*city* on first use), or wrap an existing
    system with :meth:`for_system`.  The verb-level methods
    (:meth:`ingest_rows`, :meth:`publish_frames`, :meth:`flush_broker`,
    ...) are the canonical implementations of the F2C write path; the
    config-driven :meth:`session` / :meth:`run` porcelain maps the
    configured transport onto them.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        system: Optional["F2CDataManagement"] = None,
        catalog=None,
        city=None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self._system = system
        self._catalog = catalog if catalog is not None else (
            system.catalog if system is not None else None
        )
        self._city = city

    @classmethod
    def for_system(cls, system: "F2CDataManagement") -> "Pipeline":
        """The engine for an existing deployment (default direct config)."""
        return cls(system=system)

    # ------------------------------------------------------------------ #
    # Deployment access
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> "F2CDataManagement":
        """The underlying deployment (built on first use)."""
        if self._system is None:
            if self.config.transport == "sharded":
                raise ConfigurationError(
                    "the sharded transport builds its deployment per run(); "
                    "use Pipeline.run(workload) instead of streaming ingest"
                )
            self._system = self._build_system(self._catalog)
        return self._system

    def _build_system(self, catalog) -> "F2CDataManagement":
        from repro.core.architecture import F2CDataManagement

        return F2CDataManagement(
            city=self._city,
            catalog=catalog,
            movement_policy=self.config.movement_policy(),
            frame_format=self.config.resolved_frame_format(),
            durable_dir=self.config.durable_dir,
            durable_fog2=self.config.durable_fog2,
        )

    # ------------------------------------------------------------------ #
    # Direct ingestion (moved from F2CDataManagement.ingest_readings)
    # ------------------------------------------------------------------ #
    def ingest_rows(
        self,
        readings: Iterable[Reading],
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Route readings to their section's fog layer-1 node and acquire them.

        Readings from sensors without an explicit assignment are spread over
        sections deterministically (stable CRC-32 hash of the sensor id, so
        the spreading is identical across runs), or sent to *default_section*
        when given.  Returns the number of readings acquired per fog layer-1
        node.

        The edge→fog hop is also recorded in the traffic accountant, so the
        per-layer byte report includes what fog layer 1 received from the
        sensors themselves.
        """
        system = self.system
        timestamp = now if now is not None else system.simulator.clock.now()
        if isinstance(readings, ReadingBatch):
            return self.ingest_columns(readings.columns, now=timestamp, default_section=default_section)
        if isinstance(readings, ReadingColumns):
            return self.ingest_columns(readings, now=timestamp, default_section=default_section)
        # Bucket into plain per-node lists first (one append per reading),
        # then decompose each node's list into columns in bulk — the batch
        # stays columnar from here to the cloud.  Routing is inlined with a
        # persistent sensor → node cache: the cache hit is the common case
        # and must not pay a function call per reading.
        node_cache = system._sensor_node_cache
        route = system._resolve_node_cached
        per_node: Dict[str, List[Reading]] = defaultdict(list)
        if default_section is None:
            for reading in readings:
                sensor_id = reading.sensor_id
                node_id = node_cache.get(sensor_id)
                if node_id is None:
                    node_id = route(sensor_id, None)
                per_node[node_id].append(reading)
        else:
            # A caller default overrides cached spread routes, so the cache
            # is bypassed (assignment still wins inside the resolver).
            for reading in readings:
                per_node[route(reading.sensor_id, default_section)].append(reading)

        acquired_counts: Dict[str, int] = {}
        for node_id, node_readings in per_node.items():
            batch = ReadingBatch.from_columns(ReadingColumns.from_reading_list(node_readings))
            acquired_counts[node_id] = self._acquire_at_node(node_id, batch, timestamp)
        return acquired_counts

    def ingest_columns(
        self,
        columns: ReadingColumns,
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Columnar-native ingest: route and acquire a whole column batch.

        Same semantics as :meth:`ingest_rows` but the input is already in
        the native column representation (e.g. decoded wire frames or an
        in-process columnar feed), so no per-reading objects exist anywhere
        on the path.
        """
        system = self.system
        timestamp = now if now is not None else system.simulator.clock.now()
        node_cache = system._sensor_node_cache
        route = system._resolve_node_cached
        buckets: Dict[str, List[int]] = {}
        index = 0
        for sensor_id in columns.sensor_ids:
            if default_section is None:
                node_id = node_cache.get(sensor_id)
                if node_id is None:
                    node_id = route(sensor_id, None)
            else:
                node_id = route(sensor_id, default_section)
            bucket = buckets.get(node_id)
            if bucket is None:
                bucket = buckets[node_id] = []
            bucket.append(index)
            index += 1
        acquired_counts: Dict[str, int] = {}
        if len(buckets) == 1:
            (node_id, _), = buckets.items()
            acquired_counts[node_id] = self._acquire_at_node(
                node_id, ReadingBatch.from_columns(columns), timestamp
            )
            return acquired_counts
        for node_id, indices in buckets.items():
            batch = ReadingBatch.from_columns(columns.gather(indices))
            acquired_counts[node_id] = self._acquire_at_node(node_id, batch, timestamp)
        return acquired_counts

    def _acquire_at_node(self, node_id: str, batch: ReadingBatch, timestamp: float) -> int:
        system = self.system
        fog1 = system.fog1_node(node_id)
        system.simulator.accountant.record_transfer(
            timestamp=timestamp,
            source=f"sensors/{fog1.section_id}",
            target=node_id,
            target_layer=LayerName.FOG_1,
            size_bytes=batch.total_bytes,
            message_count=len(batch),
        )
        acquired = fog1.ingest(batch, timestamp)
        return len(acquired)

    # ------------------------------------------------------------------ #
    # Broker integration (moved from F2CDataManagement)
    # ------------------------------------------------------------------ #
    def attach_broker(self, broker: Broker, city_slug: str = "bcn", batched: bool = False) -> None:
        """Subscribe every fog layer-1 node to its section's topic subtree.

        Topics follow ``city/<city>/<district>/<section>/<category>/<type>``;
        the payload must be the reading's wire encoding produced by
        :meth:`repro.sensors.readings.Reading.encode` and is re-parsed into a
        minimal reading (value as string) for acquisition.

        With ``batched=True`` messages are parked in a per-fog-node broker
        inbox instead of running the acquisition block per message; call
        :meth:`flush_broker` to drain every inbox and acquire each node's
        backlog as one batch.  This is the high-throughput ingest mode: the
        acquisition block, traffic accounting and storage bookkeeping all run
        once per batch instead of once per reading.

        The subscription state lives on the deployment (not this engine), so
        any pipeline or shim bound to the same system shares it.
        """
        system = self.system
        system._broker = broker
        system._broker_batched = batched
        for district in system.city.districts:
            for section in district.sections:
                node_id = fog1_node_id(section.section_id)
                # Section ids contain '/', which is fine for MQTT topics.
                topic_filter = f"city/{city_slug}/{section.section_id}/#"
                broker.subscribe(
                    client_id=node_id,
                    topic_filter=topic_filter,
                    handler=self._broker_handler(node_id),
                    batched=batched,
                )

    @staticmethod
    def _parse_broker_message(message: Message) -> Optional[Reading]:
        """Decode one CSV wire payload back into a minimal reading.

        Returns ``None`` for anything that does not parse as a reading line
        — too few fields, a non-numeric timestamp, bytes that are not UTF-8
        (e.g. a binary frame whose magic got corrupted in flight).  A bad
        payload is dropped, never raised.
        """
        try:
            fields = decode_csv_line(message.payload.rstrip(b" "))
        except UnicodeDecodeError:
            return None
        if len(fields) < 4:
            return None
        sensor_id, sensor_type, value_text, timestamp_text = fields[:4]
        try:
            value: object = float(value_text)
        except ValueError:
            value = value_text
        try:
            timestamp = float(timestamp_text)
        except ValueError:
            return None
        category = message.topic.split("/")[-2] if message.topic.count("/") >= 2 else "unknown"
        return Reading(
            sensor_id=sensor_id,
            sensor_type=sensor_type,
            category=category,
            value=value,
            timestamp=timestamp,
            size_bytes=len(message.payload),
        )

    def _decode_message_columns(self, message: Message) -> Optional[ReadingColumns]:
        """Decode any broker payload (column frame or CSV line) into columns.

        Column frames carry the whole batch, including the per-reading
        Table-I wire sizes, so downstream traffic accounting is identical to
        the per-reading CSV path.  Returns ``None`` (and counts the drop)
        for any malformed payload: a frame decodes whole or not at all, so
        a corrupt message can neither abort a flush nor partially ingest.
        """
        payload = message.payload
        if ReadingColumns.is_frame(payload):
            try:
                return ReadingColumns.decode_frame(payload)
            except (ValueError, TypeError, KeyError, OverflowError):
                # Malformed frames are dropped exactly like malformed CSV
                # payloads (QoS 0): one corrupt message must not abort a
                # flush and lose the rest of the drained inbox.
                self.system.dropped_payloads += 1
                return None
        reading = self._parse_broker_message(message)
        if reading is None:
            self.system.dropped_payloads += 1
            return None
        columns = ReadingColumns()
        columns.append_reading(reading)
        return columns

    def _broker_handler(self, node_id: str):
        def handle(message: Message) -> None:
            columns = self._decode_message_columns(message)
            if columns is None or not len(columns):
                return
            system = self.system
            timestamp = max(columns.timestamps)
            fog1 = system.fog1_node(node_id)
            system.simulator.accountant.record_transfer(
                timestamp=timestamp,
                source=f"broker/{node_id}",
                target=node_id,
                target_layer=LayerName.FOG_1,
                size_bytes=columns.total_bytes,
                message_count=len(columns),
            )
            fog1.ingest(ReadingBatch.from_columns(columns), timestamp)

        return handle

    def flush_broker(self, now: Optional[float] = None) -> Dict[str, int]:
        """Drain every fog node's broker inbox and acquire it as one batch.

        Only meaningful after ``attach_broker(..., batched=True)``.  Returns
        the number of readings acquired per fog layer-1 node.  The traffic
        accountant records one transfer per (node, flush) with the summed
        byte volume, mirroring what :meth:`ingest_rows` does for direct
        batch ingestion.
        """
        system = self.system
        if system._broker is None:
            raise ConfigurationError("no broker attached")
        if not system._broker_batched:
            raise ConfigurationError("broker was not attached in batched mode")
        acquired_counts: Dict[str, int] = {}
        # Drain only this architecture's own fog layer-1 subscriptions: other
        # batched clients may share the broker and own their inboxes.
        decode = self._decode_message_columns
        for node_id in system._fog1:
            messages = system._broker.drain_inbox(node_id)
            if not messages:
                continue
            columns = ReadingColumns()
            for message in messages:
                decoded = decode(message)
                if decoded is not None:
                    columns.extend_columns(decoded)
            if not len(columns):
                continue
            # Batch maximum, not the last arrival: with out-of-order arrivals
            # an older last message would make newer readings look like they
            # are from the future and fail the quality phase's skew check.
            timestamp = now if now is not None else max(columns.timestamps)
            fog1 = system.fog1_node(node_id)
            system.simulator.accountant.record_transfer(
                timestamp=timestamp,
                source=f"broker/{node_id}",
                target=node_id,
                target_layer=LayerName.FOG_1,
                size_bytes=columns.total_bytes,
                message_count=len(columns),
            )
            acquired = fog1.ingest(ReadingBatch.from_columns(columns), timestamp)
            acquired_counts[node_id] = len(acquired)
        return acquired_counts

    def _route_per_section(
        self, readings: Iterable[Reading], default_section: Optional[str]
    ) -> Dict[str, List[Reading]]:
        """Group readings per owning section, exactly like direct ingest routes."""
        system = self.system
        section_by_node = {node_id: fog1.section_id for node_id, fog1 in system._fog1.items()}
        node_cache = system._sensor_node_cache
        route = system._resolve_node_cached
        per_section: Dict[str, List[Reading]] = defaultdict(list)
        for reading in readings:
            if default_section is None:
                node_id = node_cache.get(reading.sensor_id)
                if node_id is None:
                    node_id = route(reading.sensor_id, None)
            else:
                node_id = route(reading.sensor_id, default_section)
            section_id = section_by_node.get(node_id)
            if section_id is None:
                # Same descriptive failure as the direct ingest path.
                raise RoutingError(f"unknown fog layer-1 node: {node_id}")
            per_section[section_id].append(reading)
        return per_section

    def publish_frames(
        self,
        broker: Optional[Broker] = None,
        readings: Iterable[Reading] = (),
        city_slug: str = "bcn",
        default_section: Optional[str] = None,
        timestamp: float = 0.0,
        frame_format: Optional[str] = None,
    ) -> Dict[str, int]:
        """Publish readings as one column frame per section (wire fast path).

        Readings are routed to sections exactly like :meth:`ingest_rows`
        routes them to fog nodes, then each section's rows are encoded into
        a single :meth:`ReadingColumns.encode_frame` payload and published
        on ``city/<slug>/<section>/frame``.  Fog layer-1 subscribers decode
        the frame back into columns (see :meth:`_decode_message_columns`),
        so one broker delivery replaces one delivery per reading while the
        per-reading Table-I wire sizes — carried inside the frame — keep the
        traffic accounting identical.

        *frame_format* overrides the wire layout for this call; otherwise
        the system's configured :attr:`~repro.core.architecture.F2CDataManagement.frame_format`
        applies (and, when that is ``None`` too, the process-wide default).
        Receivers auto-detect the layout per payload, so format can change
        mid-stream.

        Returns the number of readings framed per section.
        """
        system = self.system
        if broker is None:
            broker = system._broker
        if broker is None:
            raise ConfigurationError("no broker attached and none supplied")
        if frame_format is None:
            frame_format = system.frame_format
        elif frame_format not in FRAME_FORMATS:
            raise ConfigurationError(
                f"frame_format must be one of {FRAME_FORMATS}, got {frame_format!r}"
            )
        per_section = self._route_per_section(readings, default_section)
        published: Dict[str, int] = {}
        topic_cache = system._frame_topic_cache
        for section_id, section_readings in per_section.items():
            topic = topic_cache.get((city_slug, section_id))
            if topic is None:
                topic = topic_cache[(city_slug, section_id)] = (
                    f"city/{city_slug}/{section_id}/frame"
                )
            columns = ReadingColumns.from_reading_list(section_readings)
            broker.publish(
                topic,
                columns.encode_frame(format=frame_format),
                timestamp=timestamp,
            )
            published[section_id] = len(section_readings)
        return published

    def publish_csv(
        self,
        broker: Optional[Broker] = None,
        readings: Iterable[Reading] = (),
        city_slug: str = "bcn",
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Publish readings one CSV payload at a time (the per-reading wire).

        The historical broker transport: each reading is encoded with
        :meth:`Reading.encode` and published on its own
        ``city/<slug>/<section>/<category>/<type>`` topic at the reading's
        timestamp.  Returns the number of readings published per section.

        Note the CSV wire truncates payloads to the reading's Table-I
        ``size_bytes``; readings whose line does not fit are dropped on
        re-parse at the fog node (frames are lossless — prefer a frame
        transport for new code).
        """
        system = self.system
        if broker is None:
            broker = system._broker
        if broker is None:
            raise ConfigurationError("no broker attached and none supplied")
        per_section = self._route_per_section(readings, default_section)
        published: Dict[str, int] = {}
        publish = broker.publish
        for section_id, section_readings in per_section.items():
            prefix = f"city/{city_slug}/{section_id}/"
            for reading in section_readings:
                publish(
                    f"{prefix}{reading.category}/{reading.sensor_type}",
                    reading.encode(),
                    timestamp=reading.timestamp,
                )
            published[section_id] = len(section_readings)
        return published

    # ------------------------------------------------------------------ #
    # Config-driven porcelain
    # ------------------------------------------------------------------ #
    def session(self, broker: Optional[Broker] = None) -> "IngestSession":
        """An :class:`IngestSession` over this pipeline's deployment."""
        return IngestSession(self, broker=broker)

    def run(self, workload: Optional["ShardedWorkload"] = None) -> "F2CClient":
        """Run a declarative seeded workload through the configured transport.

        The one entry point that covers all transports, including
        ``sharded(N)``: the workload (default: the golden-fixture workload)
        is regenerated deterministically, ingested round by round through
        the configured wire, and synchronised per its sync plan.  Returns an
        :class:`~repro.api.client.F2CClient` over the finished deployment —
        query it, read its reports, or keep ingesting (non-sharded
        transports).
        """
        from repro.api.client import F2CClient
        from repro.runtime.shards import ShardedWorkload, WorkerSpec, build_shard_rounds
        from repro.sensors.catalog import BARCELONA_CATALOG
        from repro.sensors.generator import ReadingGenerator

        config = self.config
        if workload is None:
            workload = ShardedWorkload.golden()
        catalog = self._catalog if self._catalog is not None else BARCELONA_CATALOG
        if config.transport == "sharded":
            from repro.runtime.supervisor import run_sharded

            result = run_sharded(
                workers=config.workers,
                workload=workload,
                catalog=catalog,
                inline=config.inline_workers,
                frame_format=config.resolved_frame_format(),
                durable_dir=config.durable_dir,
                durable_fog2=config.durable_fog2,
            )
            return result.client()

        # Single process: regenerate the full workload exactly like a
        # one-shard run (workers=1 keeps every section), then drive it
        # through this transport's session round by round.
        system = self._build_system(catalog)
        pipeline = Pipeline(config, system=system, catalog=catalog)
        generator = ReadingGenerator(
            catalog, devices_per_type=workload.devices_per_type, seed=workload.seed
        )
        spec = WorkerSpec(shard_index=0, workers=1, workload=workload, catalog=catalog)
        rounds = build_shard_rounds(spec, system, generator)
        session = pipeline.session()
        ingested = 0
        for rounds_before, sync_time in workload.sync_plan:
            while ingested < min(rounds_before, len(rounds)):
                timestamp, readings = rounds[ingested]
                if readings:
                    session.ingest(readings, now=timestamp)
                ingested += 1
            system.synchronise(now=sync_time)
        return F2CClient(system=system, pipeline=pipeline, session=session)

    def serve(
        self,
        workload: Optional["ShardedWorkload"] = None,
        *,
        clock=None,
        broker: Optional[Broker] = None,
        round_hook=None,
        worker_faults=None,
    ) -> "ServeHandle":
        """Run *workload* as a long-running service and return its handle.

        The service shape of :meth:`run`: the same rounds and sync points,
        applied in the same order — so the final cloud digest is
        byte-identical — but advanced by a background thread on a clock
        (``config.serve_tick_interval_s`` between rounds) while the
        returned :class:`~repro.api.serving.ServeHandle` answers queries
        concurrently from the same deployment.  Pass a
        :class:`~repro.common.clock.VirtualClock` as *clock* for a
        deterministic instant-pacing run; omit it to pace on the wall
        clock.

        For broker transports the serve loop builds its broker with the
        config's ``serve_inbox_limit`` (bounded per-client inboxes;
        overflow sheds and is counted).  For the ``sharded`` transport the
        background thread runs the supervisor fan-in itself — queries
        resolve against the broad tiers while workers stream, and
        ``shutdown`` drains gracefully at the next sync barrier.

        *round_hook* (round-ticking transports only) is called as
        ``round_hook(handle, round_index, readings)`` under the serve lock
        before each round lands — the scenario engine's fault-injection
        point.  *worker_faults* (sharded only) schedules deterministic
        per-shard worker kills (see
        :class:`~repro.runtime.shards.WorkerFault`).

        See :mod:`repro.api.serving` for the concurrency/consistency model.
        """
        from repro.api.client import F2CClient
        from repro.api.serving import ServeHandle
        from repro.runtime.shards import ShardedWorkload, WorkerSpec, build_shard_rounds
        from repro.sensors.catalog import BARCELONA_CATALOG
        from repro.sensors.generator import ReadingGenerator

        config = self.config
        if workload is None:
            workload = ShardedWorkload.golden()
        catalog = self._catalog if self._catalog is not None else BARCELONA_CATALOG
        if config.transport == "sharded":
            from repro.runtime.supervisor import ShardSupervisor

            if round_hook is not None:
                raise ConfigurationError(
                    "round_hook is not supported on the sharded transport "
                    "(rounds run inside the workers); schedule worker_faults instead"
                )
            supervisor = ShardSupervisor(
                workers=config.workers,
                workload=workload,
                catalog=catalog,
                inline=config.inline_workers,
                frame_format=config.resolved_frame_format(),
                durable_dir=config.durable_dir,
                durable_fog2=config.durable_fog2,
                faults=worker_faults,
            )
            client = F2CClient(
                system=supervisor.architecture,
                pipeline=Pipeline(config, system=supervisor.architecture, catalog=catalog),
            )
            return ServeHandle(
                client,
                workload=workload,
                supervisor=supervisor,
                clock=clock,
                tick_interval_s=config.serve_tick_interval_s,
                drain_timeout_s=config.serve_drain_timeout_s,
            )

        # Single process: regenerate the workload exactly like run() does,
        # then let the handle's thread pace it round by round.
        if worker_faults:
            raise ConfigurationError(
                "worker_faults requires the sharded transport; use round_hook "
                "to inject faults into round-ticking transports"
            )
        system = self._build_system(catalog)
        pipeline = Pipeline(config, system=system, catalog=catalog)
        generator = ReadingGenerator(
            catalog, devices_per_type=workload.devices_per_type, seed=workload.seed
        )
        spec = WorkerSpec(shard_index=0, workers=1, workload=workload, catalog=catalog)
        rounds = build_shard_rounds(spec, system, generator)
        if broker is None and config.uses_broker():
            broker = Broker(inbox_limit=config.serve_inbox_limit)
        session = pipeline.session(broker=broker)
        client = F2CClient(system=system, pipeline=pipeline, session=session, broker=broker)
        return ServeHandle(
            client,
            workload=workload,
            rounds=rounds,
            clock=clock,
            tick_interval_s=config.serve_tick_interval_s,
            drain_timeout_s=config.serve_drain_timeout_s,
            round_hook=round_hook,
        )


class IngestSession:
    """One ``ingest()`` verb, whatever the transport.

    Sessions are cheap views over a :class:`Pipeline`: they attach the
    broker (for broker transports) on construction and translate
    ``ingest(readings)`` into the transport's publish/flush/acquire steps.
    """

    def __init__(self, pipeline: Pipeline, broker: Optional[Broker] = None) -> None:
        config = pipeline.config
        if config.transport == "sharded":
            raise ConfigurationError(
                "the sharded transport runs whole workloads; use Pipeline.run(workload)"
            )
        self.pipeline = pipeline
        self.config = config
        #: Narrow observation hook (the scenario engine's ingest tap):
        #: called as ``on_ingest(offered, counts)`` after every
        #: :meth:`ingest`, where *offered* is the number of readings handed
        #: to the transport and *counts* the per-node acquisition dict the
        #: call returns.  ``None`` (the default) costs one falsy check.
        self.on_ingest = None
        self.broker: Optional[Broker] = None
        if config.uses_broker():
            self.broker = broker if broker is not None else Broker()
            batched = config.batched if config.transport == "broker-csv" else True
            pipeline.attach_broker(self.broker, city_slug=config.city_slug, batched=batched)

    @property
    def system(self) -> "F2CDataManagement":
        return self.pipeline.system

    def ingest(
        self,
        readings: Iterable[Reading],
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Drive *readings* through the configured transport.

        Returns the number of readings acquired per fog layer-1 node for
        the batched transports.  For the per-message broker transport
        (``broker-csv`` with ``batched=False``) acquisition happens
        synchronously during publishing and the returned counts are the
        readings *published* per node (a truncated-CSV payload can still be
        dropped at the fog node — see
        :attr:`~repro.core.architecture.F2CDataManagement.dropped_payloads`).
        """
        transport = self.config.transport
        pipeline = self.pipeline
        if self.on_ingest is not None and not hasattr(readings, "__len__"):
            readings = list(readings)
        if transport == "direct":
            counts = pipeline.ingest_rows(readings, now=now, default_section=default_section)
        elif transport == "broker-csv":
            published = pipeline.publish_csv(
                self.broker,
                readings,
                city_slug=self.config.city_slug,
                default_section=default_section,
            )
            if self.config.batched:
                counts = pipeline.flush_broker(now=now)
            else:
                counts = {fog1_node_id(section): count for section, count in published.items()}
        else:
            # Frame transports: one column frame per section, then one flush.
            timestamp = now if now is not None else pipeline.system.simulator.clock.now()
            pipeline.publish_frames(
                self.broker,
                readings,
                city_slug=self.config.city_slug,
                default_section=default_section,
                timestamp=timestamp,
                frame_format=self.config.resolved_frame_format(),
            )
            counts = pipeline.flush_broker(now=now)
        if self.on_ingest is not None:
            self.on_ingest(len(readings), counts)
        return counts

    def synchronise(self, now: Optional[float] = None) -> Dict[str, Dict[str, int]]:
        """Move pending data fog L1 → fog L2 → cloud immediately."""
        return self.pipeline.system.synchronise(now=now)
