"""Hierarchical F2C data access: serve every query from the nearest tier.

The paper's architecture is two-sided: data moves *up* (acquisition → fog
layer 1 → fog layer 2 → cloud) and consumers read *down*, served from the
closest layer that still holds the requested window — real-time windows
from the section's own fog layer-1 node, recent history from the district's
fog layer-2 node, and everything older from the cloud.
:class:`QueryService` implements that resolution over a deployed
:class:`~repro.core.architecture.F2CDataManagement`:

* a query names a *scope* (sensor, section, category, or the whole city)
  and a half-open time window ``since <= t < until``;
* per fog layer-1 chain the service picks the nearest tier whose store
  still covers the window (a tier that has never evicted holds its full
  local history; one that has is trusted only back to its oldest retained
  timestamp) and falls through to fog layer 2 and the cloud otherwise;
* city- and category-wide queries scatter-gather across every section's
  chain and merge the columnar results;
* results carry per-tier attribution (:class:`TierSlice` sources and a
  rows-by-tier summary) and the service keeps served-from counters;
* hot windows are memoized — the owning client invalidates the cache on
  every ingest/synchronise.

In a sharded run the supervisor's fog layer-1 stores are empty (the data
was acquired in worker processes), which the architecture reports via
:meth:`~repro.core.architecture.F2CDataManagement.fog1_store_is_authoritative`;
queries then resolve to fog layer 2 / cloud, exactly as a remote consumer
would experience it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.architecture import F2CDataManagement

#: Tier names, nearest first (the order resolution walks them).
TIER_FOG_1 = "fog_layer_1"
TIER_FOG_2 = "fog_layer_2"
TIER_CLOUD = "cloud"
TIERS: Tuple[str, ...] = (TIER_FOG_1, TIER_FOG_2, TIER_CLOUD)


@dataclass(frozen=True)
class TierSlice:
    """One consulted (node, tier) and the rows it contributed."""

    node_id: str
    tier: str
    section_id: Optional[str]
    rows: int


@dataclass(frozen=True)
class QueryResult:
    """A columnar query answer with per-tier attribution.

    ``columns`` holds the merged rows (section chains in canonical city
    order, rows in per-store order); ``sources`` records every consulted
    chain's serving node and tier; ``rows_by_tier`` sums rows per tier.
    ``cache_hit`` is true when the service answered from its memo.
    """

    since: float
    until: float
    columns: ReadingColumns
    sources: Tuple[TierSlice, ...]
    rows_by_tier: Dict[str, int] = field(default_factory=dict)
    cache_hit: bool = False

    def __len__(self) -> int:
        return len(self.columns)

    def batch(self) -> ReadingBatch:
        """The result as a :class:`ReadingBatch` (adopts the columns)."""
        return ReadingBatch.from_columns(self.columns)

    def readings(self) -> List[Reading]:
        """Materialized :class:`Reading` objects (API-boundary convenience)."""
        return self.columns.to_readings()

    def tiers(self) -> Tuple[str, ...]:
        """The distinct tiers that served rows, nearest first."""
        used = {source.tier for source in self.sources if source.rows}
        return tuple(tier for tier in TIERS if tier in used)


class QueryService:
    """Nearest-tier query resolution over one F2C deployment."""

    def __init__(self, system: "F2CDataManagement") -> None:
        self.system = system
        self._cache: Dict[tuple, QueryResult] = {}
        self.queries_served = 0
        self.cache_hits = 0
        self.rows_by_tier: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.queries_by_tier: Dict[str, int] = {tier: 0 for tier in TIERS}

    # ------------------------------------------------------------------ #
    # Cache control
    # ------------------------------------------------------------------ #
    def invalidate(self) -> int:
        """Drop every memoized window; returns how many entries were dropped.

        Called by the owning client whenever data moves (ingest or an
        upward sync): both change what a window contains *and* which tier
        is nearest for it.
        """
        dropped = len(self._cache)
        self._cache.clear()
        return dropped

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        sensor_id: Optional[str] = None,
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> QueryResult:
        """Answer (scope, window) from the nearest tier holding the window.

        Scope: *sensor_id* resolves to the sensor's section chain,
        *section_id* to that section's chain, neither to a scatter-gather
        across every section; *category* narrows any scope.  The window is
        half-open (``since <= t < until``); an inverted window is simply
        empty.  Repeated queries are memoized until :meth:`invalidate`.
        """
        key = (since, until, sensor_id, section_id, category)
        cached = self._cache.get(key)
        if cached is not None:
            self.queries_served += 1
            self.cache_hits += 1
            # Hand out copies of the mutable parts: QueryResult.batch()
            # adopts the columns, so a caller mutating its answer must not
            # corrupt the memo for everyone else.
            return replace(
                cached,
                columns=cached.columns.copy(),
                rows_by_tier=dict(cached.rows_by_tier),
                cache_hit=True,
            )

        system = self.system
        scatter = sensor_id is None and section_id is None
        if section_id is not None:
            fog1_nodes = [system.fog1_for_section(section_id)]  # validates the id
        elif sensor_id is not None:
            fog1_nodes = [self._node_for_sensor(sensor_id)]
        else:
            fog1_nodes = system.fog1_nodes()  # canonical city-section order

        out = ReadingColumns()
        sources: List[TierSlice] = []
        rows_by_tier: Dict[str, int] = {}
        for fog1 in fog1_nodes:
            for node, tier, sub_since, sub_until in self._chain_slices(fog1, since, until):
                part = self._query_at(
                    node, tier, fog1, sub_since, sub_until, sensor_id, category
                )
                rows = len(part)
                if rows:
                    out.extend_columns(part)
                    rows_by_tier[tier] = rows_by_tier.get(tier, 0) + rows
                if rows or not scatter:
                    # Scatter-gather over 73 empty sections would drown the
                    # attribution in zero-row slices; targeted queries keep
                    # their (possibly empty) chain so callers see the tier
                    # that answered.
                    sources.append(TierSlice(node.node_id, tier, fog1.section_id, rows))

        result = QueryResult(
            since=since,
            until=until,
            columns=out,
            sources=tuple(sources),
            rows_by_tier=rows_by_tier,
        )
        # The memo keeps its own copy of the mutable parts for the same
        # reason cache hits return copies: the first caller owns `result`.
        self._cache[key] = replace(
            result, columns=out.copy(), rows_by_tier=dict(rows_by_tier)
        )
        self.queries_served += 1
        for tier in {source.tier for source in sources}:
            self.queries_by_tier[tier] += 1
        for tier, rows in rows_by_tier.items():
            self.rows_by_tier[tier] += rows
        return result

    # ------------------------------------------------------------------ #
    # Resolution internals
    # ------------------------------------------------------------------ #
    def _node_for_sensor(self, sensor_id: str):
        """The fog layer-1 chain owning *sensor_id*'s data.

        Explicit assignment wins; otherwise a sensor that was routed with a
        caller-supplied ``default_section`` is found by scanning the (at
        most 73) fog layer-1 stores for its series; last, the stable
        CRC-32 spreading names the chain — the same order of precedence the
        write path routes with.
        """
        system = self.system
        section = system.section_of_sensor(sensor_id)
        if section is not None:
            return system.fog1_for_section(section)
        for fog1 in system.fog1_nodes():
            if fog1.storage.has_series(sensor_id):
                return fog1
        return system.fog1_for_section(system.spread_section(sensor_id))

    def _chain_slices(self, fog1, since: float, until: float):
        """Partition the window across *fog1*'s chain, nearest tier first.

        Walks fog L1 → fog L2 → cloud.  A tier that covers the (remaining)
        window serves all of it and terminates the walk; a tier that only
        retains a newer tail — it evicted back to ``oldest`` but holds rows
        the broader tiers may not have received yet (pending upward sync) —
        serves ``[oldest, upper)`` and passes ``[since, oldest)`` down the
        chain.  Each tier keeps *every* row from its oldest retained
        timestamp onward (eviction only drops prefixes) and the broader
        tiers hold everything that was ever synced up, so the returned
        slices are a duplicate-free, loss-free partition of the window.

        Returns ``(node, tier, sub_since, sub_until)`` tuples in ascending
        time order.
        """
        system = self.system
        fog2 = system.fog2_node(system.parent_of(fog1.node_id))
        chain = []
        if system.fog1_store_is_authoritative(fog1.node_id):
            chain.append((fog1, TIER_FOG_1))
        chain.append((fog2, TIER_FOG_2))
        slices = []
        upper = until
        for node, tier in chain:
            if upper <= since:
                break
            if self._covers(node.storage, since):
                slices.append((node, tier, since, upper))
                break
            oldest = node.storage.store.oldest_timestamp()
            if oldest is not None and since < oldest < upper:
                slices.append((node, tier, oldest, upper))
                upper = oldest
        else:
            if upper > since:
                slices.append((system.cloud, TIER_CLOUD, since, upper))
        slices.reverse()
        return slices

    @staticmethod
    def _covers(storage, since: float) -> bool:
        """Whether a tier still holds everything from *since* onward.

        A tier that never evicted holds its full local history (upward
        drains copy, they do not remove), so it covers any window; one
        that has evicted is trusted only back to its oldest retained
        timestamp.
        """
        if storage.evicted_count == 0:
            return True
        oldest = storage.store.oldest_timestamp()
        return oldest is not None and oldest <= since

    @staticmethod
    def _query_at(node, tier, fog1, since, until, sensor_id, category) -> ReadingColumns:
        """One tier's rows for one chain's scope, as columns."""
        # At the broad tiers the chain's area is selected by the acquiring
        # fog node's id, which every stored reading carries; at fog layer 1
        # the store *is* the area.
        fog_filter = None if tier == TIER_FOG_1 else fog1.node_id
        batch = node.storage.query_window(
            since=since,
            until=until,
            category=category,
            sensor_id=sensor_id,
            fog_node_id=fog_filter,
        )
        return batch.columns

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Served-from counters (folded into the client's health report)."""
        return {
            "served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_size": len(self._cache),
            "queries_by_tier": dict(self.queries_by_tier),
            "rows_by_tier": dict(self.rows_by_tier),
        }
