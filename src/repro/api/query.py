"""Hierarchical F2C data access: serve every query from the nearest tier.

The paper's architecture is two-sided: data moves *up* (acquisition → fog
layer 1 → fog layer 2 → cloud) and consumers read *down*, served from the
closest layer that still holds the requested window — real-time windows
from the section's own fog layer-1 node, recent history from the district's
fog layer-2 node, and everything older from the cloud.
:class:`QueryService` implements that resolution over a deployed
:class:`~repro.core.architecture.F2CDataManagement`:

* a query names a *scope* (sensor, section, category, or the whole city)
  and a half-open time window ``since <= t < until``;
* per fog layer-1 chain the service picks the nearest tier whose store
  still covers the window (a tier that has never evicted holds its full
  local history; one that has is trusted only back to its oldest retained
  timestamp) and falls through to fog layer 2 and the cloud otherwise;
* city- and category-wide queries scatter-gather across every section's
  chain; chains that resolve to the *same* broad node and window are
  answered together by one partitioned store pass
  (:meth:`~repro.storage.timeseries.TimeSeriesStore.query_window_partitioned`)
  instead of one filtered scan per section, and the per-section sub-queries
  the broad tiers do pay ride the store's fog/category series indexes;
* results carry per-tier attribution (:class:`TierSlice` sources and a
  rows-by-tier summary) and the service keeps served-from counters;
* on a durable deployment (:attr:`~repro.api.config.PipelineConfig.durable_dir`)
  a broad tier whose in-memory store has aged a window out can still answer
  it from its cold :class:`~repro.storage.segments.SegmentLog`: the service
  hydrates a shadow store by replaying the log (decoding one frame per
  segment, lazily, only when a cold window is actually asked for) and serves
  the whole slice from it — row-identical to the in-memory engine, same
  per-tier attribution, cached (in a byte-bounded LRU of its own, capacity
  :attr:`~repro.api.config.PipelineConfig.cold_store_cache_bytes`) until
  the log's contents change or the budget evicts it;
* hot windows are memoized in a **byte-accounted LRU** (capacity set by
  :attr:`~repro.api.config.PipelineConfig.query_cache_bytes`); the owning
  client invalidates it on every ingest/synchronise, and evictions are
  surfaced through :meth:`stats` / the client's health report;
* wide historical windows can be answered approximately through
  :meth:`summarize`, which folds the window into constant-size sketches
  (:class:`~repro.aggregation.sketches.CountMinSketch` /
  :class:`~repro.aggregation.sketches.DistinctCounter`) with the same
  per-tier attribution, so a city-wide question does not have to
  materialize every cloud row for the consumer.

Results (cold and memoized alike) share *frozen* read-only columns — no
defensive copy per hit; :meth:`QueryResult.batch` copies lazily when a
caller adopts the rows.

Attribution conventions: per-result ``rows_by_tier`` and the service-level
``rows_by_tier`` / ``queries_by_tier`` counters are all *sparse* — a tier
appears once it has served rows (resp. been consulted), never as a
pre-seeded zero.

In a sharded run the supervisor's fog layer-1 stores are empty (the data
was acquired in worker processes), which the architecture reports via
:meth:`~repro.core.architecture.F2CDataManagement.fog1_store_is_authoritative`;
queries then resolve to fog layer 2 / cloud, exactly as a remote consumer
would experience it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.aggregation.sketches import CountMinSketch, DistinctCounter
from repro.common.errors import RoutingError
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.architecture import F2CDataManagement

#: Tier names, nearest first (the order resolution walks them).
TIER_FOG_1 = "fog_layer_1"
TIER_FOG_2 = "fog_layer_2"
TIER_CLOUD = "cloud"
TIERS: Tuple[str, ...] = (TIER_FOG_1, TIER_FOG_2, TIER_CLOUD)


@dataclass(frozen=True)
class TierSlice:
    """One consulted (node, tier) and the rows it contributed."""

    node_id: str
    tier: str
    section_id: Optional[str]
    rows: int


@dataclass(frozen=True)
class QueryResult:
    """A columnar query answer with per-tier attribution.

    ``columns`` holds the merged rows (section chains in canonical city
    order, rows in per-store order); ``sources`` records every consulted
    chain's serving node and tier; ``rows_by_tier`` sums rows per tier
    (sparse: only tiers that served rows appear).
    ``cache_hit`` is true when the service answered from its memo.

    Service-produced results are backed by *frozen* (read-only) columns
    shared with the memo; mutating them raises.  :meth:`batch` hands out a
    batch over a private mutable copy, made lazily only then.
    """

    since: float
    until: float
    columns: ReadingColumns
    sources: Tuple[TierSlice, ...]
    rows_by_tier: Dict[str, int] = field(default_factory=dict)
    cache_hit: bool = False

    def __len__(self) -> int:
        return len(self.columns)

    def batch(self) -> ReadingBatch:
        """The result as a :class:`ReadingBatch` the caller may mutate.

        Frozen (service-shared) columns are copied here, lazily — callers
        that never adopt the rows never pay for a copy.
        """
        columns = self.columns
        if columns.frozen:
            columns = columns.copy()
        return ReadingBatch.from_columns(columns)

    def readings(self) -> List[Reading]:
        """Materialized :class:`Reading` objects (API-boundary convenience)."""
        return self.columns.to_readings()

    def tiers(self) -> Tuple[str, ...]:
        """The distinct tiers that served rows, nearest first."""
        used = {source.tier for source in self.sources if source.rows}
        return tuple(tier for tier in TIERS if tier in used)


@dataclass(frozen=True)
class QuerySummary:
    """A constant-size approximate answer for a (wide) window.

    Instead of the window's rows, carries one mergeable
    :class:`~repro.aggregation.sketches.CountMinSketch` (per-sensor reading
    frequencies) and one
    :class:`~repro.aggregation.sketches.DistinctCounter` (distinct active
    sensors) per category, plus the exact row/tier attribution the
    equivalent exact query would have reported.  A city-wide historical
    question costs the consumer a few KB regardless of how many cloud rows
    the window spans.
    """

    since: float
    until: float
    rows: int
    rows_by_tier: Dict[str, int]
    sources: Tuple[TierSlice, ...]
    frequency: Dict[str, CountMinSketch]
    distinct: Dict[str, DistinctCounter]

    def categories(self) -> List[str]:
        """The categories observed in the window, sorted."""
        return sorted(self.frequency)

    def distinct_sensors(self, category: str) -> float:
        """Estimated number of distinct sensors that reported in *category*."""
        counter = self.distinct.get(category)
        return counter.estimate() if counter is not None else 0.0

    def reading_count(self, category: str, sensor_id: str) -> int:
        """Estimated readings of *sensor_id* in *category* (never undercounts)."""
        sketch = self.frequency.get(category)
        return sketch.estimate(sensor_id) if sketch is not None else 0

    def size_bytes(self) -> int:
        """Approximate serialized size of the summary's sketches."""
        return sum(sketch.size_bytes() for sketch in self.frequency.values()) + sum(
            counter.size_bytes() for counter in self.distinct.values()
        )

    def tiers(self) -> Tuple[str, ...]:
        """The distinct tiers that served rows, nearest first."""
        used = {source.tier for source in self.sources if source.rows}
        return tuple(tier for tier in TIERS if tier in used)


#: Shared empty columns for zero-row partitioned buckets (never mutated).
_EMPTY_COLUMNS = ReadingColumns().freeze()


class QueryService:
    """Nearest-tier query resolution over one F2C deployment."""

    #: Default memo capacity (bytes) when no config names one.
    DEFAULT_CACHE_BYTES = 8 * 1024 * 1024

    #: Default hydrated cold-store capacity (bytes) when no config names one.
    DEFAULT_COLD_STORE_BYTES = 64 * 1024 * 1024

    # Byte accounting for the memo: each entry is charged the *measured*
    # footprint of its frozen columns (:meth:`ReadingColumns.memory_bytes`
    # — packed buffers at itemsize per row, list columns at a pointer per
    # row plus every distinct referenced object once) plus fixed
    # per-entry / per-source overheads for the result shell.
    _CACHE_ENTRY_OVERHEAD = 512
    _CACHE_SOURCE_COST = 64

    #: Per-segment sketch cache bound (segments, LRU).  Each entry is a few
    #: KB (one sketch pair per category in the segment), so the cap keeps
    #: the cache around a MB at the default sketch sizes.
    _SKETCH_CACHE_MAX_SEGMENTS = 256

    def __init__(
        self,
        system: "F2CDataManagement",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cold_store_bytes: int = DEFAULT_COLD_STORE_BYTES,
    ) -> None:
        self.system = system
        #: key -> (memoized result, accounted cost); ordered oldest-hit first.
        self._cache: "OrderedDict[tuple, Tuple[QueryResult, int]]" = OrderedDict()
        self._cache_bytes = 0
        self.cache_capacity_bytes = max(0, int(cache_bytes))
        self.cache_evictions = 0
        #: sensor id -> fog layer-1 node id, for sensors with no explicit
        #: assignment (resolved via the broad tiers' series index or the
        #: probe loop); invalidated together with the window memo.
        self._sensor_chain: Dict[str, str] = {}
        #: (node, window, fog1, category, sketch params) -> (rows, pairs):
        #: the folded sketches of one synced broad-tier segment, reused by
        #: :meth:`summarize` instead of re-adding the segment's rows.
        self._sketch_cache: "OrderedDict[tuple, Tuple[int, Dict[str, tuple]]]" = OrderedDict()
        self.sketch_cache_hits = 0
        #: ``False`` answers city-wide scatters with one filtered sub-query
        #: per section chain (the pre-partitioned behaviour); kept as an
        #: A/B lever for the benchmark and the equivalence suite.
        self.partitioned_scatter = True
        #: node_id -> (log state key, hydrated shadow store, accounted
        #: bytes): the cold serving stores, rebuilt only when the backing
        #: segment log's contents change (the state key covers appends and
        #: drops), so they survive :meth:`invalidate` — an ingest that did
        #: not touch the log cannot stale them.  Byte-bounded LRU (same
        #: accounting as the window memo): a whole segment log hydrated
        #: into memory is the most expensive thing the service caches, so
        #: under a long-running serve loop with TTL eviction the shadow
        #: stores must not grow without limit.
        self._cold_stores: "OrderedDict[str, Tuple[tuple, object, int]]" = OrderedDict()
        self._cold_store_bytes = 0
        self.cold_store_capacity_bytes = max(0, int(cold_store_bytes))
        self.cold_store_evictions = 0
        self.cold_segment_queries = 0
        self.cold_store_builds = 0
        self.queries_served = 0
        self.summaries_served = 0
        self.cache_hits = 0
        self.rows_by_tier: Dict[str, int] = {}
        self.queries_by_tier: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Cache control
    # ------------------------------------------------------------------ #
    def invalidate(self) -> int:
        """Drop every memoized window; returns how many entries were dropped.

        Called by the owning client whenever data moves (ingest or an
        upward sync): both change what a window contains *and* which tier
        is nearest for it.  The sensor→chain memo drops too (routing can
        change with new data).  Invalidation is not eviction — it does not
        bump :attr:`cache_evictions`.
        """
        dropped = len(self._cache)
        self._cache.clear()
        self._cache_bytes = 0
        self._sensor_chain.clear()
        self._sketch_cache.clear()
        return dropped

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def cache_bytes(self) -> int:
        """Accounted bytes currently held by the memo."""
        return self._cache_bytes

    def _memoize(self, key: tuple, result: QueryResult) -> None:
        """Insert a result into the LRU, evicting oldest entries over budget."""
        capacity = self.cache_capacity_bytes
        if capacity <= 0:
            return
        cost = (
            self._CACHE_ENTRY_OVERHEAD
            + result.columns.memory_bytes()
            + len(result.sources) * self._CACHE_SOURCE_COST
        )
        if cost > capacity:
            # An oversized result would evict the whole memo and still not
            # fit; serving it uncached is strictly better.
            return
        # The memo keeps its own rows_by_tier dict (callers may mutate
        # theirs); the columns are frozen and safely shared.
        self._cache[key] = (replace(result, rows_by_tier=dict(result.rows_by_tier)), cost)
        self._cache_bytes += cost
        cache = self._cache
        while self._cache_bytes > capacity:
            _, (_, evicted_cost) = cache.popitem(last=False)
            self._cache_bytes -= evicted_cost
            self.cache_evictions += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        sensor_id: Optional[str] = None,
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> QueryResult:
        """Answer (scope, window) from the nearest tier holding the window.

        Scope: *sensor_id* resolves to the sensor's section chain,
        *section_id* to that section's chain, neither to a scatter-gather
        across every section; *category* narrows any scope.  The window is
        half-open (``since <= t < until``); an inverted window is simply
        empty.  Repeated queries are memoized (LRU, byte-bounded) until
        :meth:`invalidate`.
        """
        key = (since, until, sensor_id, section_id, category)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            self.queries_served += 1
            self.cache_hits += 1
            cached = entry[0]
            # No columnar copy: the columns are frozen and shared.  Only
            # the small mutable dict is duplicated per hit.
            return replace(cached, rows_by_tier=dict(cached.rows_by_tier), cache_hit=True)

        scatter = sensor_id is None and section_id is None
        plans = self._chain_plans(since, until, sensor_id, section_id)
        parts = (
            self._partitioned_parts(plans, category)
            if scatter and self.partitioned_scatter
            else None
        )

        out = ReadingColumns()
        sources: List[TierSlice] = []
        rows_by_tier: Dict[str, int] = {}
        for fog1, slices in plans:
            for node, tier, sub_since, sub_until in slices:
                part = (
                    parts.get((node.node_id, sub_since, sub_until, fog1.node_id))
                    if parts is not None
                    else None
                )
                if part is None:
                    part = self._query_at(
                        node, tier, fog1, sub_since, sub_until, sensor_id, category
                    )
                rows = len(part)
                if rows:
                    out.extend_columns(part)
                    rows_by_tier[tier] = rows_by_tier.get(tier, 0) + rows
                if rows or not scatter:
                    # Scatter-gather over 73 empty sections would drown the
                    # attribution in zero-row slices; targeted queries keep
                    # their (possibly empty) chain so callers see the tier
                    # that answered.
                    sources.append(TierSlice(node.node_id, tier, fog1.section_id, rows))

        result = QueryResult(
            since=since,
            until=until,
            columns=out.freeze(),
            sources=tuple(sources),
            rows_by_tier=rows_by_tier,
        )
        self._memoize(key, result)
        self.queries_served += 1
        self._account(sources, rows_by_tier)
        return result

    def summarize(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        section_id: Optional[str] = None,
        category: Optional[str] = None,
        *,
        width: int = 256,
        depth: int = 4,
        precision: int = 10,
    ) -> QuerySummary:
        """Approximate (scope, window) as constant-size per-category sketches.

        Resolves tiers exactly like :meth:`query` (same chain walk, same
        partitioned scatter, same attribution) but folds each tier's rows
        into a count-min sketch + distinct counter per category instead of
        accumulating columns, so the answer stays a few KB however wide
        the window is.  *width*/*depth*/*precision* size the sketches (see
        :mod:`repro.aggregation.sketches`).  Whole summaries are not
        memoized, but each synced broad-tier segment's folded sketch pair
        is (until :meth:`invalidate`): a repeated city-wide summary merges
        one cached constant-size pair per segment instead of re-adding
        every cloud row.
        """
        scatter = section_id is None
        plans = self._chain_plans(since, until, None, section_id)
        parts = (
            self._partitioned_parts(plans, category)
            if scatter and self.partitioned_scatter
            else None
        )

        frequency: Dict[str, CountMinSketch] = {}
        distinct: Dict[str, DistinctCounter] = {}
        sources: List[TierSlice] = []
        rows_by_tier: Dict[str, int] = {}
        total = 0
        for fog1, slices in plans:
            for node, tier, sub_since, sub_until in slices:
                rows, pairs = self._segment_sketches(
                    node, tier, fog1, sub_since, sub_until, category,
                    parts, width, depth, precision,
                )
                if rows:
                    total += rows
                    rows_by_tier[tier] = rows_by_tier.get(tier, 0) + rows
                    for row_category, (seg_sketch, seg_counter) in pairs.items():
                        sketch = frequency.get(row_category)
                        if sketch is None:
                            sketch = frequency[row_category] = CountMinSketch(width, depth)
                            distinct[row_category] = DistinctCounter(precision)
                        # Decomposable fold: one bulk merge per segment
                        # instead of one sketch add per row.  The cached
                        # pair is never mutated, only folded from.
                        sketch.update(seg_sketch)
                        distinct[row_category].update(seg_counter)
                if rows or not scatter:
                    sources.append(TierSlice(node.node_id, tier, fog1.section_id, rows))

        self.summaries_served += 1
        self._account(sources, rows_by_tier)
        return QuerySummary(
            since=since,
            until=until,
            rows=total,
            rows_by_tier=rows_by_tier,
            sources=tuple(sources),
            frequency=frequency,
            distinct=distinct,
        )

    def _segment_sketches(
        self,
        node,
        tier: str,
        fog1,
        sub_since: float,
        sub_until: float,
        category: Optional[str],
        parts: Optional[Dict[tuple, ReadingColumns]],
        width: int,
        depth: int,
        precision: int,
    ) -> Tuple[int, Dict[str, tuple]]:
        """One chain segment's rows folded into per-category sketch pairs.

        Broad-tier (fog layer 2 / cloud) segments are cached by
        ``(node, window, chain, category, sketch params)``: their contents
        only change when data moves, at which point :meth:`invalidate`
        drops the cache, so a repeated :meth:`summarize` over a synced
        window folds one cached constant-size pair per segment instead of
        re-adding every row.  Fog layer-1 segments are always computed
        fresh (their stores churn with every ingest round).
        """
        key = None
        if tier != TIER_FOG_1:
            key = (
                node.node_id, sub_since, sub_until, fog1.node_id,
                category, width, depth, precision,
            )
            cached = self._sketch_cache.get(key)
            if cached is not None:
                self._sketch_cache.move_to_end(key)
                self.sketch_cache_hits += 1
                return cached
        part = (
            parts.get((node.node_id, sub_since, sub_until, fog1.node_id))
            if parts is not None
            else None
        )
        if part is None:
            part = self._query_at(node, tier, fog1, sub_since, sub_until, None, category)
        rows = len(part)
        pairs: Dict[str, tuple] = {}
        for sensor_id, row_category in zip(part.sensor_ids, part.categories):
            pair = pairs.get(row_category)
            if pair is None:
                pair = pairs[row_category] = (
                    CountMinSketch(width, depth),
                    DistinctCounter(precision),
                )
            pair[0].add(sensor_id)
            pair[1].add(sensor_id)
        if key is not None:
            self._sketch_cache[key] = (rows, pairs)
            while len(self._sketch_cache) > self._SKETCH_CACHE_MAX_SEGMENTS:
                self._sketch_cache.popitem(last=False)
        return rows, pairs

    # ------------------------------------------------------------------ #
    # Resolution internals
    # ------------------------------------------------------------------ #
    def _account(self, sources: List[TierSlice], rows_by_tier: Dict[str, int]) -> None:
        """Fold one answer's attribution into the service counters (sparse)."""
        queries_by_tier = self.queries_by_tier
        for tier in {source.tier for source in sources}:
            queries_by_tier[tier] = queries_by_tier.get(tier, 0) + 1
        service_rows = self.rows_by_tier
        for tier, rows in rows_by_tier.items():
            service_rows[tier] = service_rows.get(tier, 0) + rows

    def _chain_plans(
        self,
        since: float,
        until: float,
        sensor_id: Optional[str],
        section_id: Optional[str],
    ) -> List[tuple]:
        """The fog layer-1 chains in scope, each with its window slices."""
        system = self.system
        if section_id is not None:
            fog1_nodes = [system.fog1_for_section(section_id)]  # validates the id
        elif sensor_id is not None:
            fog1_nodes = [self._node_for_sensor(sensor_id)]
        else:
            fog1_nodes = system.fog1_chain()  # canonical city-section order
        return [(fog1, self._chain_slices(fog1, since, until)) for fog1 in fog1_nodes]

    def _partitioned_parts(self, plans: List[tuple], category: Optional[str]) -> Dict[tuple, ReadingColumns]:
        """One-pass answers for broad-tier slices shared by ≥2 chains.

        Chains whose windows resolve to the *same* broad node and sub-window
        (the common case for a city-wide scatter: every chain fell through
        to the cloud for the same range) are answered together: one
        partitioned store pass bins the window's rows by acquiring fog
        node, instead of one fog-filtered scan per chain.  Returns
        ``(node_id, sub_since, sub_until, fog1_id) -> columns`` for every
        covered slice; slices not covered here fall back to per-chain
        filtered queries.
        """
        groups: Dict[Tuple[str, float, float], Tuple[object, List[str]]] = {}
        for fog1, slices in plans:
            for node, tier, sub_since, sub_until in slices:
                if tier == TIER_FOG_1:
                    continue  # the fog L1 store *is* the area; nothing to share
                key = (node.node_id, sub_since, sub_until)
                entry = groups.get(key)
                if entry is None:
                    groups[key] = (node, [fog1.node_id])
                else:
                    entry[1].append(fog1.node_id)
        parts: Dict[tuple, ReadingColumns] = {}
        for (node_id, sub_since, sub_until), (node, members) in groups.items():
            if len(members) < 2:
                continue  # a lone chain gains nothing over one filtered scan
            # A durable tier whose hot store aged the window out answers
            # the same one-pass partitioned scan from its hydrated cold
            # store — the scatter stays one store pass either way.
            buckets = self._serving_store(node, sub_since).query_window_partitioned(
                since=sub_since, until=sub_until, category=category
            )
            for fog1_id in members:
                batch = buckets.get(fog1_id)
                parts[(node_id, sub_since, sub_until, fog1_id)] = (
                    batch.columns if batch is not None else _EMPTY_COLUMNS
                )
        return parts

    def _node_for_sensor(self, sensor_id: str):
        """The fog layer-1 chain owning *sensor_id*'s data.

        Explicit assignment wins.  Otherwise the broad tiers' series
        indexes answer in O(#broad nodes) dict hits: every synced reading
        carries its acquiring fog node, so the cloud (or a fog layer-2
        node) can name the chain directly.  Only a sensor whose data never
        synced upward still needs the fog layer-1 probe loop; last, the
        stable CRC-32 spreading names the chain — the same order of
        precedence the write path routes with.  Resolved chains are
        memoized until :meth:`invalidate`.
        """
        system = self.system
        section = system.section_of_sensor(sensor_id)
        if section is not None:
            return system.fog1_for_section(section)
        cached = self._sensor_chain.get(sensor_id)
        if cached is not None:
            return system.fog1_node(cached)
        node = self._resolve_sensor_chain(sensor_id)
        self._sensor_chain[sensor_id] = node.node_id
        return node

    def _resolve_sensor_chain(self, sensor_id: str):
        system = self.system
        for broad in (system.cloud, *system.fog2_nodes()):
            fog_id = broad.storage.fog_of_series(sensor_id)
            if fog_id is not None:
                try:
                    return system.fog1_node(fog_id)
                except RoutingError:  # pragma: no cover - foreign/synthetic fog id
                    break  # fall back to the probe loop
        for fog1 in system.fog1_chain():
            if fog1.storage.has_series(sensor_id):
                return fog1
        return system.fog1_for_section(system.spread_section(sensor_id))

    def _chain_slices(self, fog1, since: float, until: float):
        """Partition the window across *fog1*'s chain, nearest tier first.

        Walks fog L1 → fog L2 → cloud.  A tier that covers the (remaining)
        window serves all of it and terminates the walk; a tier that only
        retains a newer tail — it evicted back to ``oldest`` but holds rows
        the broader tiers may not have received yet (pending upward sync) —
        serves ``[oldest, upper)`` and passes ``[since, oldest)`` down the
        chain.  Each tier keeps *every* row from its oldest retained
        timestamp onward (eviction only drops prefixes) and the broader
        tiers hold everything that was ever synced up, so the returned
        slices are a duplicate-free, loss-free partition of the window.

        Returns ``(node, tier, sub_since, sub_until)`` tuples in ascending
        time order.
        """
        system = self.system
        fog2 = system.fog2_node(system.parent_of(fog1.node_id))
        chain = []
        if system.fog1_store_is_authoritative(fog1.node_id):
            chain.append((fog1, TIER_FOG_1))
        chain.append((fog2, TIER_FOG_2))
        slices = []
        upper = until
        for node, tier in chain:
            if upper <= since:
                break
            if self._covers_node(node, since):
                slices.append((node, tier, since, upper))
                break
            oldest = self._oldest_retained(node)
            if oldest is not None and since < oldest < upper:
                slices.append((node, tier, oldest, upper))
                upper = oldest
        else:
            if upper > since:
                slices.append((system.cloud, TIER_CLOUD, since, upper))
        slices.reverse()
        return slices

    @staticmethod
    def _covers(storage, since: float) -> bool:
        """Whether a tier's *in-memory* store holds everything from *since* on.

        A tier that never evicted holds its full local history (upward
        drains copy, they do not remove), so it covers any window; one
        that has evicted is trusted only back to its oldest retained
        timestamp.
        """
        if storage.evicted_count == 0:
            return True
        oldest = storage.store.oldest_timestamp()
        return oldest is not None and oldest <= since

    def _covers_node(self, node, since: float) -> bool:
        """Whether *node* can answer [*since*, …) — hot store or cold log.

        The hot-store rule is :meth:`_covers`.  A durable tier additionally
        covers windows its segment log still holds: the log records every
        batch the tier ever stored, so until TTL eviction drops segments it
        holds the tier's full history, and after drops it is trusted back
        to its oldest live segment.
        """
        if self._covers(node.storage, since):
            return True
        log = node.segment_log
        if log is None or not log.segment_count:
            return False
        if log.dropped_segments == 0:
            return True
        oldest = log.oldest_time()
        return oldest is not None and oldest <= since

    def _oldest_retained(self, node) -> Optional[float]:
        """Oldest timestamp *node* can still serve, across hot store and log."""
        oldest = node.storage.store.oldest_timestamp()
        log = node.segment_log
        if log is not None and log.segment_count:
            seg_oldest = log.oldest_time()
            if seg_oldest is not None and (oldest is None or seg_oldest < oldest):
                oldest = seg_oldest
        return oldest

    def _serving_store(self, node, since: float):
        """The store answering [*since*, …) at *node* — usually the hot one.

        Falls back to the hydrated cold store only when the in-memory store
        has evicted past *since* and the node keeps a segment log; a
        non-durable node always serves (possibly incompletely) from memory,
        exactly as before.
        """
        storage = node.storage
        if self._covers(storage, since):
            return storage
        log = node.segment_log
        if log is None:
            return storage
        self.cold_segment_queries += 1
        return self._cold_store(node.node_id, log)

    def _cold_store(self, node_id: str, log):
        """A shadow store hydrated from *log*, rebuilt only when it changes.

        Replaying the full log in append order reproduces the hot store's
        ingest order exactly (the log records precisely what the tier
        stored, at the moment it stored it), so window queries against the
        shadow are row-identical — including row order and the fog/category
        attribution carried in the extended frames — to what the in-memory
        engine would have answered before eviction.  Frames are decoded
        here, one per segment, only when a cold window is actually served.

        Hydrated stores live in a byte-accounted LRU (capacity
        :attr:`cold_store_capacity_bytes`, measured with the same
        :meth:`ReadingColumns.memory_bytes` accounting as the window memo):
        least-recently-served nodes are evicted over budget, and a single
        hydration larger than the whole budget is served uncached — the
        same rule the memo applies to oversized results.
        """
        state = (log.segment_count, log.appended_rows, log.dropped_segments)
        cached = self._cold_stores.get(node_id)
        if cached is not None:
            if cached[0] == state:
                self._cold_stores.move_to_end(node_id)
                return cached[1]
            # The log changed under the cached shadow: reclaim its bytes
            # before rebuilding (replacement, not eviction).
            del self._cold_stores[node_id]
            self._cold_store_bytes -= cached[2]
        from repro.storage.tiered import TieredStore

        store = TieredStore(name=f"{node_id}:cold")
        cost = self._CACHE_ENTRY_OVERHEAD
        for _segment, columns in log.replay():
            store.ingest_columns(columns, mark_for_upward=False)
            cost += columns.memory_bytes()
        self.cold_store_builds += 1
        capacity = self.cold_store_capacity_bytes
        if capacity <= 0 or cost > capacity:
            return store
        self._cold_stores[node_id] = (state, store, cost)
        self._cold_store_bytes += cost
        cold_stores = self._cold_stores
        while self._cold_store_bytes > capacity:
            _, (_, _, evicted_cost) = cold_stores.popitem(last=False)
            self._cold_store_bytes -= evicted_cost
            self.cold_store_evictions += 1
        return store

    def _query_at(self, node, tier, fog1, since, until, sensor_id, category) -> ReadingColumns:
        """One tier's rows for one chain's scope, as columns."""
        # At the broad tiers the chain's area is selected by the acquiring
        # fog node's id, which every stored reading carries; at fog layer 1
        # the store *is* the area.
        fog_filter = None if tier == TIER_FOG_1 else fog1.node_id
        batch = self._serving_store(node, since).query_window(
            since=since,
            until=until,
            category=category,
            sensor_id=sensor_id,
            fog_node_id=fog_filter,
        )
        return batch.columns

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Served-from counters (folded into the client's health report).

        ``queries_by_tier`` / ``rows_by_tier`` are sparse: a tier appears
        once it has been consulted (resp. served rows), matching the
        per-result ``rows_by_tier`` convention.  ``cache_evictions`` counts
        LRU budget evictions only — :meth:`invalidate` drops are not
        evictions.
        """
        return {
            "served": self.queries_served,
            "summaries": self.summaries_served,
            "cache_hits": self.cache_hits,
            "cache_size": len(self._cache),
            "cache_bytes": self._cache_bytes,
            "cache_capacity_bytes": self.cache_capacity_bytes,
            "cache_evictions": self.cache_evictions,
            "sketch_cache_size": len(self._sketch_cache),
            "sketch_cache_hits": self.sketch_cache_hits,
            "cold_segment_queries": self.cold_segment_queries,
            "cold_store_builds": self.cold_store_builds,
            "cold_stores": len(self._cold_stores),
            "cold_store_bytes": self._cold_store_bytes,
            "cold_store_capacity_bytes": self.cold_store_capacity_bytes,
            "cold_store_evictions": self.cold_store_evictions,
            "queries_by_tier": dict(self.queries_by_tier),
            "rows_by_tier": dict(self.rows_by_tier),
        }
