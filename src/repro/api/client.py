"""The unified F2C client: one object for both sides of the architecture.

:class:`F2CClient` pairs a write-side :class:`~repro.api.pipeline.Pipeline`
(ingest through any transport) with a read-side
:class:`~repro.api.query.QueryService` (nearest-tier hierarchical queries)
over one deployed system, and unifies the operational counters scattered
across the subsystems — broker payload drops, sharded-runtime IPC frame
drops and worker restarts, query cache behaviour — into a single
:meth:`health` report surfaced through :meth:`summary`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.api.config import PipelineConfig
from repro.api.pipeline import IngestSession, Pipeline
from repro.api.query import QueryResult, QueryService, QuerySummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.architecture import F2CDataManagement
    from repro.runtime.shards import ShardedWorkload
    from repro.runtime.supervisor import ShardedRunResult
    from repro.sensors.readings import Reading


class F2CClient:
    """Typed facade over one F2C deployment (ingest + query + health)."""

    def __init__(
        self,
        system: Optional["F2CDataManagement"] = None,
        *,
        config: Optional[PipelineConfig] = None,
        pipeline: Optional[Pipeline] = None,
        session: Optional[IngestSession] = None,
        sharded: Optional["ShardedRunResult"] = None,
        catalog=None,
        city=None,
        broker=None,
    ) -> None:
        if pipeline is None:
            if system is not None:
                pipeline = Pipeline(config, system=system, catalog=catalog, city=city)
            else:
                pipeline = Pipeline(config, catalog=catalog, city=city)
        self.pipeline = pipeline
        self.sharded = sharded
        self._session = session
        self._broker = broker
        self.queries = QueryService(
            pipeline.system if system is None else system,
            cache_bytes=pipeline.config.query_cache_bytes,
            cold_store_bytes=pipeline.config.cold_store_cache_bytes,
        )
        self._injector = None

    @property
    def injector(self):
        """A lazily-built :class:`~repro.core.faults.FailureInjector` over
        this deployment.

        One injector per client: every ``fail``/``recover``/``failover``
        call is reflected in :meth:`health`'s ``availability`` section, so
        chaos tooling and operators read the same surface.
        """
        if self._injector is None:
            from repro.core.faults import FailureInjector

            self._injector = FailureInjector(self.system)
        return self._injector

    # ------------------------------------------------------------------ #
    # Deployment access
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> "F2CDataManagement":
        return self.queries.system

    @property
    def config(self) -> PipelineConfig:
        return self.pipeline.config

    @property
    def session(self) -> IngestSession:
        """The write-side session (attaches the broker on first use)."""
        if self._session is None:
            self._session = self.pipeline.session(broker=self._broker)
        return self._session

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        readings: Iterable["Reading"],
        now: Optional[float] = None,
        default_section: Optional[str] = None,
    ) -> Dict[str, int]:
        """Drive *readings* through the configured transport.

        Returns readings acquired per fog layer-1 node (see
        :meth:`IngestSession.ingest`).  Memoized query windows are
        invalidated — new data changes both window contents and which tier
        is nearest.
        """
        counts = self.session.ingest(readings, now=now, default_section=default_section)
        self.queries.invalidate()
        return counts

    def synchronise(self, now: Optional[float] = None) -> Dict[str, Dict[str, int]]:
        """Move pending data fog L1 → fog L2 → cloud immediately."""
        moved = self.system.synchronise(now=now)
        self.queries.invalidate()
        return moved

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def query(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        sensor_id: Optional[str] = None,
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> QueryResult:
        """Nearest-tier hierarchical query (see :class:`QueryService`)."""
        return self.queries.query(
            since=since,
            until=until,
            sensor_id=sensor_id,
            section_id=section_id,
            category=category,
        )

    def summarize(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> QuerySummary:
        """Constant-size approximate answer (see :meth:`QueryService.summarize`)."""
        return self.queries.summarize(
            since=since,
            until=until,
            section_id=section_id,
            category=category,
        )

    # ------------------------------------------------------------------ #
    # Health & reports
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        """One report for every drop/fault counter in the deployment.

        * ``dropped_payloads`` — malformed broker payloads (bad CSV lines,
          corrupt/truncated/unknown-version frames) dropped at fog layer 1;
          in a sharded run the supervisor folds the workers' counts in.
        * ``dropped_ipc_frames`` — records lost (and resynced past) on the
          worker → supervisor streams, including rejected corrupt frames.
        * ``worker_restarts`` / ``worker_faults`` — shards re-run from seed
          after a worker death or protocol damage.
        * ``queries`` — served-from counters and cache behaviour of the
          read side (including the cold-store LRU's bytes and evictions).
        * ``broker`` — the attached broker's delivery/overload counters
          (``{"attached": False}`` when no broker is attached): published /
          delivered / shed messages, per-client shed attribution, the
          configured inbox bound and the current parked backlog.
        * ``durable`` — the segment-log report (``{"enabled": False}`` on a
          memory-only deployment): per-log segment/byte counts and how many
          damaged tail records were dropped-and-counted.
        * ``conservation`` — the unified loss ledger: every counted loss
          (broker payload drops, IPC frame drops, shed messages, torn
          durable-log records) plus per-tier ingest/store/evict/pending
          aggregates, so auditors check ``offered == ingested + losses``
          against one surface.  The scattered top-level keys remain as
          aliases.
        * ``availability`` — the failure injector's
          :class:`~repro.core.faults.AvailabilityReport` (all-healthy
          numbers when no failure was ever injected).
        """
        sharded = self.sharded
        broker = self.system._broker
        broker_stats: Dict[str, Any] = {"attached": False}
        if broker is not None:
            broker_stats = {"attached": True, **broker.stats()}
        durable = self.system.durable_report()
        dropped_ipc = sharded.dropped_ipc_frames if sharded is not None else 0
        return {
            "dropped_payloads": self.system.dropped_payloads,
            "dropped_ipc_frames": dropped_ipc,
            "worker_restarts": sharded.worker_restarts if sharded is not None else 0,
            "worker_faults": list(sharded.worker_faults) if sharded is not None else [],
            "queries": self.queries.stats(),
            "broker": broker_stats,
            "durable": durable,
            "conservation": self._conservation_ledger(broker_stats, durable, dropped_ipc),
            "availability": self.injector.availability().as_dict(),
        }

    def _conservation_ledger(
        self,
        broker_stats: Dict[str, Any],
        durable: Dict[str, Any],
        dropped_ipc_frames: int,
    ) -> Dict[str, Any]:
        """One ledger for every counted loss plus per-tier aggregates.

        ``total_counted_losses`` sums the mutually-exclusive loss channels:
        undecodable payloads dropped at fog L1, IPC frames lost on the
        worker streams, broker messages shed (bounded inboxes, partitions,
        unsubscribe gaps) and torn durable-log records.  Corrupted messages
        are a *cause*, not an extra channel — an undecodable corrupted frame
        is already counted in ``dropped_payloads`` — so they are reported
        but not summed.
        """
        dropped_log_records = int(durable.get("dropped_log_records", 0)) if durable.get("enabled") else 0
        dropped_log_bytes = int(durable.get("dropped_log_bytes", 0)) if durable.get("enabled") else 0
        shed_messages = int(broker_stats.get("shed_messages", 0))
        tiers: Dict[str, Dict[str, int]] = {}
        for stats in self.system.storage_report().values():
            layer = str(stats.get("layer", "unknown"))
            entry = tiers.setdefault(
                layer,
                {
                    "ingested_readings": 0,
                    "stored_readings": 0,
                    "evicted_readings": 0,
                    "pending_upward": 0,
                    # Fog L1 acquisition refusals (quality/aggregation) —
                    # zero at broader tiers, which ingest admitted data.
                    "rejected_readings": 0,
                },
            )
            for key in entry:
                entry[key] += int(stats.get(key, 0))
        return {
            "dropped_payloads": self.system.dropped_payloads,
            "dropped_ipc_frames": dropped_ipc_frames,
            "shed_messages": shed_messages,
            "corrupted_messages": int(broker_stats.get("corrupted_messages", 0)),
            "dropped_log_records": dropped_log_records,
            "dropped_log_bytes": dropped_log_bytes,
            "total_counted_losses": (
                self.system.dropped_payloads
                + dropped_ipc_frames
                + shed_messages
                + dropped_log_records
            ),
            "tiers": tiers,
        }

    def summary(self) -> Dict[str, Any]:
        """The deployment summary with the health report folded in."""
        report = self.system.summary()
        report["health"] = self.health()
        return report

    def traffic_report(self) -> Dict[str, int]:
        """Bytes received per layer (the paper's core comparison quantity)."""
        return self.system.traffic_report()

    def storage_report(self) -> Dict[str, Dict[str, Any]]:
        """Storage statistics per node, keyed by node id."""
        return self.system.storage_report()

    def golden_report(self) -> Dict[str, Any]:
        """Traffic + storage in the ``ingest_golden.json`` fixture shape."""
        storage = {
            node_id: {
                "stored_readings": stats["stored_readings"],
                "stored_bytes": stats["stored_bytes"],
                "ingested_readings": stats["ingested_readings"],
                "ingested_bytes": stats["ingested_bytes"],
            }
            for node_id, stats in self.storage_report().items()
        }
        return {"traffic": self.traffic_report(), "storage": storage}

    def cloud_contents(self) -> List[tuple]:
        """Canonical (sorted) cloud store contents for equivalence checks."""
        from repro.runtime.supervisor import cloud_contents

        return cloud_contents(self.system)

    def cloud_digest(self) -> str:
        """SHA-256 over the canonical cloud contents (cheap equality token)."""
        from repro.runtime.supervisor import cloud_digest

        return cloud_digest(self.system)


def connect(
    config: Optional[PipelineConfig] = None,
    *,
    system: Optional["F2CDataManagement"] = None,
    catalog=None,
    city=None,
    broker=None,
    **config_kwargs,
) -> F2CClient:
    """Build an :class:`F2CClient` for streaming use.

    ``connect()`` deploys Barcelona with the direct transport;
    ``connect(transport="frames-binary")`` (or any
    :class:`PipelineConfig` field as a keyword) selects another wire.  Pass
    an existing *system* to put the facade over a deployment you already
    drive elsewhere.  The sharded transport has no streaming mode — use
    :func:`run_workload`.
    """
    if config is not None and config_kwargs:
        raise TypeError("pass either a PipelineConfig or config keywords, not both")
    if config is None:
        config = PipelineConfig(**config_kwargs)
    return F2CClient(system=system, config=config, catalog=catalog, city=city, broker=broker)


def run_workload(
    workload: Optional["ShardedWorkload"] = None,
    config: Optional[PipelineConfig] = None,
    *,
    catalog=None,
    city=None,
    **config_kwargs,
) -> F2CClient:
    """Run a declarative seeded workload and return a client over the result.

    The one-call form of :meth:`Pipeline.run`, covering every transport
    including ``sharded(N)``: ``run_workload(transport="sharded",
    workers=4)`` executes the golden workload across four worker
    processes.  The returned client answers queries and reports; for
    non-sharded transports it can also keep ingesting.
    """
    if config is not None and config_kwargs:
        raise TypeError("pass either a PipelineConfig or config keywords, not both")
    if config is None:
        config = PipelineConfig(**config_kwargs)
    return Pipeline(config, catalog=catalog, city=city).run(workload)


def serve(
    workload: Optional["ShardedWorkload"] = None,
    config: Optional[PipelineConfig] = None,
    *,
    clock=None,
    catalog=None,
    city=None,
    broker=None,
    round_hook=None,
    worker_faults=None,
    **config_kwargs,
):
    """Start a workload as a long-running service; returns a ``ServeHandle``.

    The service-mode sibling of :func:`run_workload`: a background thread
    advances ingest rounds on a clock (``serve_tick_interval_s`` between
    rounds; pass a :class:`~repro.common.clock.VirtualClock` as *clock*
    for a deterministic instant-paced run) while the returned
    :class:`~repro.api.serving.ServeHandle` answers queries concurrently
    from the same deployment.  ``handle.drain()`` waits for natural
    completion; ``handle.shutdown()`` stops gracefully (the in-flight
    round or sync point completes and the durable logs are committed).
    See :mod:`repro.api.serving` for the concurrency/consistency model.
    """
    if config is not None and config_kwargs:
        raise TypeError("pass either a PipelineConfig or config keywords, not both")
    if config is None:
        config = PipelineConfig(**config_kwargs)
    return Pipeline(config, catalog=catalog, city=city).serve(
        workload,
        clock=clock,
        broker=broker,
        round_hook=round_hook,
        worker_faults=worker_faults,
    )


def recover(
    config: Optional[PipelineConfig] = None,
    *,
    catalog=None,
    city=None,
    **config_kwargs,
) -> F2CClient:
    """Rebuild a durable deployment from its segment logs and wrap a client.

    The crash-recovery entry point: point a config with ``durable_dir`` at
    the directory a previous (possibly killed) run wrote, and the broad
    tiers are replayed from their logs — opening each log repairs any
    damaged tail (truncate-and-count, never a partial ingest), cloud
    records re-run the normal receive path so the store *and* the
    preservation/archive state rebuild in original arrival order, and the
    recovered cloud digest is byte-identical to the uncrashed run's.  The
    fog layer-1 stores start empty and are marked non-authoritative, so
    queries resolve to the restored broad tiers exactly as after a sharded
    run.  Works for any transport's logs (the on-disk format does not
    depend on the wire); the returned client can keep ingesting on
    non-sharded transports.
    """
    if config is not None and config_kwargs:
        raise TypeError("pass either a PipelineConfig or config keywords, not both")
    if config is None:
        config = PipelineConfig(**config_kwargs)
    if config.durable_dir is None:
        from repro.common.errors import ConfigurationError

        raise ConfigurationError("recover() requires a config with durable_dir set")
    from repro.core.architecture import F2CDataManagement

    system = F2CDataManagement(
        city=city,
        catalog=catalog,
        movement_policy=config.movement_policy(),
        frame_format=config.resolved_frame_format(),
        durable_dir=config.durable_dir,
        durable_fog2=config.durable_fog2,
    )
    system.restore_from_segments()
    return F2CClient(system=system, config=config, catalog=catalog, city=city)
