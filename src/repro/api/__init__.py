"""repro.api — the typed public facade of the F2C data-management system.

This package is *the* way to use the system:

Write side (one pipeline abstraction, five transports)::

    from repro.api import PipelineConfig, connect

    client = connect(transport="frames-binary")
    client.ingest(readings, now=0.0)
    client.synchronise(now=900.0)

or run a whole declarative seeded workload through any transport —
including the multi-process sharded runtime — in one call::

    from repro.api import run_workload

    client = run_workload(transport="sharded", workers=4)

Read side (the paper's nearest-layer data access)::

    result = client.query(since=0.0, until=900.0, category="energy")
    result.rows_by_tier    # e.g. {"fog_layer_1": 412}
    result.sources         # per-(node, tier) attribution

Operations::

    client.health()        # drops, worker restarts, query counters
    client.summary()       # deployment summary + health

Durability (crash recovery from segment logs)::

    from repro.api import recover, run_workload

    run_workload(transport="sharded", workers=2, durable_dir="state/")
    # ...process killed mid-run; later:
    client = recover(durable_dir="state/")
    client.cloud_digest()  # byte-identical to the uncrashed run

Service mode (long-running: paced ingest + concurrent queries)::

    from repro.api import serve

    with serve(transport="frames-binary-v2", serve_inbox_limit=4096) as handle:
        result = handle.submit_query(category="energy")   # live, any time
        handle.drain()                                    # workload finishes
        handle.health()["serve"]                          # loop counters

The pre-facade entry points on
:class:`~repro.core.architecture.F2CDataManagement` (``ingest_readings``,
``ingest_columns``, ``attach_broker``, ``flush_broker``,
``publish_frames``) still work — they delegate to this layer — but are
deprecated and warn.  The exported surface below is contract-tested
(``tests/api/test_api_contract.py``): changing it requires updating the
snapshot deliberately.
"""

from repro.api.client import F2CClient, connect, recover, run_workload, serve
from repro.api.config import TRANSPORTS, PipelineConfig
from repro.api.pipeline import IngestSession, Pipeline
from repro.api.query import QueryResult, QueryService, QuerySummary, TierSlice
from repro.api.serving import ServeHandle

__all__ = [
    "F2CClient",
    "IngestSession",
    "Pipeline",
    "PipelineConfig",
    "QueryResult",
    "QueryService",
    "QuerySummary",
    "ServeHandle",
    "TRANSPORTS",
    "TierSlice",
    "connect",
    "recover",
    "run_workload",
    "serve",
]
