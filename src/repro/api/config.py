"""The one ingest-pipeline configuration object.

Before the facade existed the repo had five divergent write entry points
(per-message broker delivery, batched broker CSV, JSON column frames,
binary column frames, direct batch ingest) plus the multi-process sharded
runtime — each with its own driver code and knobs.  :class:`PipelineConfig`
collapses that into one frozen value: pick a *transport*, and the
:class:`~repro.api.pipeline.Pipeline` drives the identical data through the
identical acquisition/movement machinery, proven byte-identical by the
golden equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.serialization import FRAME_FORMATS

#: Every supported write-side transport, in historical order of appearance.
TRANSPORTS: Tuple[str, ...] = (
    "direct",         # ingest whole batches in-process (no wire encoding)
    "broker-csv",     # one CSV payload per reading over the MQTT-style broker
    "frames-json",    # one JSON column frame per (section, round)
    "frames-binary",  # one packed binary column frame per (section, round)
    "sharded",        # N worker processes over binary-frame IPC + a supervisor
    "frames-binary-v2",  # binary frames compressed with the deployment dictionary
)


@dataclass(frozen=True)
class PipelineConfig:
    """How readings travel from sensors into the F2C hierarchy.

    Attributes
    ----------
    transport:
        One of :data:`TRANSPORTS`.  ``"direct"`` is the in-process upper
        bound; the broker transports reproduce a real deployment's wire
        path; ``"sharded"`` runs fog layer-1 acquisition in *workers*
        processes (whole-workload runs only, see
        :meth:`~repro.api.pipeline.Pipeline.run`).
    workers:
        Worker-process count for the sharded transport (must stay 1
        otherwise).
    batched:
        Broker-CSV only: ``True`` parks messages in per-fog-node inboxes
        and acquires them per flush (the high-throughput mode); ``False``
        delivers per message, reproducing the pre-batching legacy path.
    city_slug:
        Topic prefix for broker transports
        (``city/<slug>/<section>/...``).
    frame_format:
        Wire layout override for frame transports.  Normally derived from
        the transport (``frames-json`` → ``"json"``, ``frames-binary`` →
        ``"binary"``); setting it to the conflicting layout is a
        configuration error.
    fog1_sync_interval_s / fog2_sync_interval_s:
        Upward-movement cadence for deployments the pipeline builds
        itself (maps onto :class:`~repro.core.movement.MovementPolicy`);
        ``None`` keeps the policy defaults (15 min / 60 min).
    inline_workers:
        Sharded only: run the workers in-process over in-memory channels
        (identical protocol bytes, no fork) — the deterministic mode tests
        and coverage runs use.
    query_cache_bytes:
        Byte budget for the client's query memo
        (:class:`~repro.api.query.QueryService`'s LRU); least-recently-hit
        windows are evicted once accounted bytes exceed it.  ``0`` disables
        memoization entirely.
    cold_store_cache_bytes:
        Byte budget for the query service's hydrated cold stores (shadow
        :class:`~repro.storage.tiered.TieredStore`\\ s replayed from durable
        segment logs); least-recently-served nodes are evicted once the
        accounted bytes exceed it.  ``0`` disables cold-store caching (each
        cold window rehydrates and discards).
    serve_tick_interval_s:
        :meth:`~repro.api.pipeline.Pipeline.serve` pacing: how long the
        serve loop waits before each ingest round.  ``0`` (the default)
        ticks as fast as possible; a :class:`~repro.common.clock.VirtualClock`
        passed to ``serve()`` makes the wait virtual (instant and
        deterministic) whatever the interval.
    serve_inbox_limit:
        Per-client broker inbox bound (messages) for brokers the serve
        loop builds; overflow sheds and is counted in
        :meth:`~repro.messaging.broker.Broker.stats` / the client's
        ``health()``.  ``None`` (the default) keeps inboxes unbounded,
        matching run-to-completion behaviour.
    serve_drain_timeout_s:
        Default timeout for :meth:`~repro.api.serving.ServeHandle.drain` /
        ``shutdown(drain=True)``: how long to wait for the serve loop to
        finish its workload (and, after a stop request, for the in-flight
        round or sync point to complete) before giving up.
    durable_dir:
        Directory for the durable segment logs
        (:mod:`repro.storage.segments`).  When set, every batch synced
        into the cloud tier is appended as a CRC-framed ``\\x00RBS`` record
        and fsync'd at sync-point boundaries; a crashed run is recovered
        with :func:`repro.api.recover`.  ``None`` (the default) keeps the
        deployment memory-only.
    durable_fog2:
        Also keep per-district segment logs for the fog layer-2 tiers
        (requires *durable_dir*); their TTL eviction then drops whole
        segments instead of rows.
    """

    transport: str = "direct"
    workers: int = 1
    batched: bool = True
    city_slug: str = "bcn"
    frame_format: Optional[str] = None
    fog1_sync_interval_s: Optional[float] = None
    fog2_sync_interval_s: Optional[float] = None
    inline_workers: bool = False
    query_cache_bytes: int = 8 * 1024 * 1024
    cold_store_cache_bytes: int = 64 * 1024 * 1024
    durable_dir: Optional[str] = None
    durable_fog2: bool = False
    serve_tick_interval_s: float = 0.0
    serve_inbox_limit: Optional[int] = None
    serve_drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be positive")
        if self.workers > 1 and self.transport != "sharded":
            raise ConfigurationError(
                f"workers={self.workers} requires the 'sharded' transport, "
                f"got {self.transport!r}"
            )
        if self.frame_format is not None:
            if self.frame_format not in FRAME_FORMATS:
                raise ConfigurationError(
                    f"frame_format must be one of {FRAME_FORMATS}, got {self.frame_format!r}"
                )
            derived = self._derived_frame_format()
            if derived is not None and derived != self.frame_format:
                raise ConfigurationError(
                    f"transport {self.transport!r} implies frame_format={derived!r}, "
                    f"got {self.frame_format!r}"
                )
            if self.transport == "sharded" and self.frame_format == "json":
                raise ConfigurationError(
                    "the sharded transport streams binary IPC frames; "
                    "frame_format must be 'binary' or 'binary-v2'"
                )
        if self.inline_workers and self.transport != "sharded":
            raise ConfigurationError("inline_workers requires the 'sharded' transport")
        if self.query_cache_bytes < 0:
            raise ConfigurationError("query_cache_bytes must be non-negative (0 disables)")
        if self.cold_store_cache_bytes < 0:
            raise ConfigurationError("cold_store_cache_bytes must be non-negative (0 disables)")
        if self.serve_tick_interval_s < 0:
            raise ConfigurationError("serve_tick_interval_s must be non-negative")
        if self.serve_inbox_limit is not None and self.serve_inbox_limit < 1:
            raise ConfigurationError(
                "serve_inbox_limit must be a positive message count (or None for unbounded)"
            )
        if self.serve_drain_timeout_s <= 0:
            raise ConfigurationError("serve_drain_timeout_s must be positive")
        if self.durable_dir is not None and not self.durable_dir:
            raise ConfigurationError("durable_dir must be a non-empty path (or None)")
        if self.durable_fog2 and self.durable_dir is None:
            raise ConfigurationError("durable_fog2 requires durable_dir")

    def _derived_frame_format(self) -> Optional[str]:
        if self.transport == "frames-json":
            return "json"
        if self.transport == "frames-binary":
            return "binary"
        if self.transport == "frames-binary-v2":
            return "binary-v2"
        return None

    def resolved_frame_format(self) -> Optional[str]:
        """The wire layout frames are published in (``None`` = process default)."""
        derived = self._derived_frame_format()
        return derived if derived is not None else self.frame_format

    def uses_broker(self) -> bool:
        return self.transport in (
            "broker-csv",
            "frames-json",
            "frames-binary",
            "frames-binary-v2",
        )

    def movement_policy(self):
        """A :class:`~repro.core.movement.MovementPolicy` for the sync cadence.

        Returns ``None`` when both intervals are unset so pipeline-built
        deployments keep the architecture's own default policy.
        """
        if self.fog1_sync_interval_s is None and self.fog2_sync_interval_s is None:
            return None
        from repro.core.movement import MovementPolicy

        defaults = MovementPolicy()
        return MovementPolicy(
            fog1_to_fog2_interval_s=(
                self.fog1_sync_interval_s
                if self.fog1_sync_interval_s is not None
                else defaults.fog1_to_fog2_interval_s
            ),
            fog2_to_cloud_interval_s=(
                self.fog2_sync_interval_s
                if self.fog2_sync_interval_s is not None
                else defaults.fog2_to_cloud_interval_s
            ),
        )
