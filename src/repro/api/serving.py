"""Long-running service mode: paced ingest with live concurrent queries.

Run-to-completion (:meth:`~repro.api.pipeline.Pipeline.run`) builds the
deployment, ingests the whole workload, and only then hands out a client.
:class:`ServeHandle` is the *service* shape of the same machinery: a
background thread advances :class:`~repro.api.pipeline.IngestSession`
rounds on a clock while callers query the very same deployment
concurrently through :meth:`ServeHandle.submit_query`.

Concurrency / consistency model
-------------------------------
The write path (stores, the query memo, the sketch cache, stats counters)
was built single-threaded; serve mode makes reads safe under concurrent
ingest with **one coarse lock** (the serve lock):

* every mutation step — an ingest round, a sync point — runs under the
  lock *together with* the query-memo/sketch-cache invalidation, as one
  atomic unit.  A query can therefore never hit a memo entry that is stale
  with respect to a round that already landed (the invalidation race this
  lock exists to close);
* every read — :meth:`~ServeHandle.submit_query`,
  :meth:`~ServeHandle.summarize`, :meth:`~ServeHandle.health` — takes the
  same lock, so readers observe round boundaries, never a half-applied
  round.

Coarse per-deployment locking is deliberate: rounds are short (one
columnar batch per section) and queries are index-driven, so the lock is
held for fractions of a millisecond at city scale; readers serialize with
the writer, exactly the consistency a single fog deployment offers.

Determinism
-----------
Pacing and data are decoupled.  Reading timestamps come from the seeded
workload generator, and rounds/sync points are applied in exactly the
order :meth:`Pipeline.run` applies them — the clock only decides *when*
the next round lands, never *what* it contains.  A run paced by a
:class:`~repro.common.clock.VirtualClock` (sleeps advance virtual time
instantly) is therefore byte-identical — same golden cloud SHA-256 digest
— to ``Pipeline.run()`` and to a wall-clock serve of the same workload,
no matter how many clients query throughout.

For the ``sharded`` transport the serve loop is the supervisor fan-in
itself, run on the background thread: queries resolve against the broad
tiers (fog layer 1 is acquired remotely in the workers, exactly like a
remote consumer sees a real deployment), the serve lock guards each sync
point's absorb, and :meth:`~ServeHandle.shutdown` drains gracefully —
the in-flight barrier completes and the durable logs are committed
before the loop exits.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.client import F2CClient
    from repro.api.query import QueryResult, QuerySummary
    from repro.runtime.shards import ShardedWorkload
    from repro.runtime.supervisor import ShardSupervisor


class ServeHandle:
    """A running F2C service: ticking ingest plus concurrent queries.

    Obtained from :meth:`Pipeline.serve` / :func:`repro.api.serve` (the
    loop starts immediately).  Use as a context manager for deterministic
    teardown::

        with api.serve(transport="frames-binary-v2") as handle:
            result = handle.submit_query(category="energy")
            handle.drain()                  # let the workload finish
            digest = handle.cloud_digest()

    ``shutdown(drain=False)`` stops early instead: the in-flight round or
    sync point completes (never a partial one), the durable logs are
    committed, and remaining rounds are skipped.
    """

    def __init__(
        self,
        client: "F2CClient",
        *,
        workload: "ShardedWorkload",
        rounds: Optional[List[Tuple[float, list]]] = None,
        supervisor: Optional["ShardSupervisor"] = None,
        clock=None,
        tick_interval_s: float = 0.0,
        drain_timeout_s: float = 30.0,
        round_hook=None,
    ) -> None:
        if (rounds is None) == (supervisor is None):
            raise ConfigurationError(
                "ServeHandle needs exactly one of precomputed rounds or a supervisor"
            )
        if clock is not None and not hasattr(clock, "sleep"):
            raise ConfigurationError(
                "serve clocks must expose sleep(seconds); use VirtualClock or WallClock"
            )
        self._client = client
        self._workload = workload
        self._rounds = rounds
        self._supervisor = supervisor
        self._clock = clock
        self._tick_interval_s = float(tick_interval_s)
        self._drain_timeout_s = float(drain_timeout_s)
        # Narrow chaos hook (the scenario engine's injection point): called
        # as ``round_hook(handle, round_index, readings)`` under the serve
        # lock immediately before each round is ingested, so injected
        # faults land exactly on round boundaries, atomic with queries.
        # ``None`` (the default) costs one falsy check per round.
        self._round_hook = round_hook
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._finished = threading.Event()
        self._error: Optional[BaseException] = None
        #: The sharded run's result, set when a supervisor-backed serve
        #: loop finishes (``None`` for round-ticking transports).
        self.result = None
        self.rounds_ingested = 0
        self.readings_offered = 0
        self.readings_ingested = 0
        self.syncs_completed = 0
        self.queries_served = 0
        self.completed = False
        if supervisor is not None:
            # The supervisor thread holds the serve lock across each sync
            # point's absorb and fires the hook (still under the lock) when
            # the barrier lands — the same atomic mutate+invalidate step
            # the round loop performs inline.
            supervisor.sync_lock = self._lock
            supervisor.on_sync_complete = self._sharded_sync_complete
        target = self._serve_rounds if supervisor is None else self._serve_sharded
        self._thread = threading.Thread(target=target, name="repro-serve", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # The serve loop
    # ------------------------------------------------------------------ #
    def _pace(self) -> None:
        """Wait one tick interval — virtually (instant) or on the wall."""
        interval = self._tick_interval_s
        if self._clock is not None:
            self._clock.sleep(interval)
        elif interval > 0.0:
            # Interruptible real wait: a stop request cuts the sleep short.
            self._stop.wait(interval)

    def _serve_rounds(self) -> None:
        """Replay the workload exactly like ``Pipeline.run``, paced and locked.

        Rounds, sync points and their order are identical to the
        run-to-completion loop — that is what makes a serve run's cloud
        digest byte-identical to ``run()``'s.  The additions are pacing
        (:meth:`_pace` before each round), stop checks between steps, and
        the serve lock making each mutation atomic with its invalidation.
        """
        client = self._client
        session = client.session
        system = client.system
        queries = client.queries
        rounds = self._rounds
        try:
            ingested = 0
            for rounds_before, sync_time in self._workload.sync_plan:
                target = min(rounds_before, len(rounds))
                while ingested < target:
                    if self._stop.is_set():
                        return
                    self._pace()
                    if self._stop.is_set():
                        return
                    timestamp, readings = rounds[ingested]
                    with self._lock:
                        if self._round_hook is not None:
                            self._round_hook(self, ingested, readings)
                        if readings:
                            self.readings_offered += len(readings)
                            counts = session.ingest(readings, now=timestamp)
                            self.readings_ingested += sum(counts.values())
                        queries.invalidate()
                        self.rounds_ingested += 1
                    ingested += 1
                if self._stop.is_set():
                    return
                with self._lock:
                    system.synchronise(now=sync_time)
                    queries.invalidate()
                    self.syncs_completed += 1
            self.completed = True
        except BaseException as exc:  # noqa: BLE001 - surfaced via drain/shutdown
            self._error = exc
        finally:
            self._commit_durable(system)
            self._finished.set()

    def _serve_sharded(self) -> None:
        """Run the supervisor fan-in; sync points invalidate via the hook."""
        system = self._client.system
        try:
            self.result = self._supervisor.run()
            self.completed = not self.result.stopped_early
        except BaseException as exc:  # noqa: BLE001 - surfaced via drain/shutdown
            self._error = exc
        finally:
            self._commit_durable(system)
            self._finished.set()

    def _sharded_sync_complete(self, sync_index: int) -> None:
        # Called by the supervisor thread while it holds the serve lock.
        self._client.queries.invalidate()
        self.syncs_completed += 1

    def _commit_durable(self, system) -> None:
        """Flush the durable logs on exit (drained or aborted alike).

        After an abort, ``recover()`` on the same directory lands on the
        last *committed* sync boundary — the loop never writes a partial
        round, so there is nothing newer to lose.
        """
        try:
            with self._lock:
                if system.durable is not None:
                    system.durable.commit()
        except BaseException as exc:  # noqa: BLE001 - keep the first failure
            if self._error is None:
                self._error = exc

    # ------------------------------------------------------------------ #
    # Read side (safe during ingest)
    # ------------------------------------------------------------------ #
    def submit_query(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        sensor_id: Optional[str] = None,
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> "QueryResult":
        """Answer a nearest-tier query against the live deployment.

        Serialized with the ingest loop on the serve lock: the answer
        reflects a round boundary — all of a landed round, none of an
        in-flight one — and the memo can never serve a result staled by a
        concurrent tick.
        """
        with self._lock:
            self.queries_served += 1
            return self._client.query(
                since=since,
                until=until,
                sensor_id=sensor_id,
                section_id=section_id,
                category=category,
            )

    def query(self, *args, **kwargs) -> "QueryResult":
        """Alias of :meth:`submit_query` (the client verb's name)."""
        return self.submit_query(*args, **kwargs)

    def summarize(
        self,
        since: float = float("-inf"),
        until: float = float("inf"),
        section_id: Optional[str] = None,
        category: Optional[str] = None,
    ) -> "QuerySummary":
        """Constant-size approximate answer, serialized like a query."""
        with self._lock:
            self.queries_served += 1
            return self._client.summarize(
                since=since,
                until=until,
                section_id=section_id,
                category=category,
            )

    def cloud_digest(self) -> str:
        """SHA-256 over the canonical cloud contents, at a round boundary."""
        with self._lock:
            return self._client.cloud_digest()

    def health(self) -> Dict[str, Any]:
        """The client health report plus a ``serve`` section (see :meth:`stats`)."""
        with self._lock:
            report = self._client.health()
            if self.result is not None:
                report["dropped_ipc_frames"] = self.result.dropped_ipc_frames
                report["worker_restarts"] = self.result.worker_restarts
                report["worker_faults"] = list(self.result.worker_faults)
                ledger = report.get("conservation")
                if ledger is not None:
                    # Keep the unified ledger consistent with the overrides:
                    # a finished sharded serve reports the run result's IPC
                    # drops, not the client's pre-run zeros.
                    ledger["dropped_ipc_frames"] = self.result.dropped_ipc_frames
                    ledger["total_counted_losses"] = (
                        ledger["dropped_payloads"]
                        + ledger["dropped_ipc_frames"]
                        + ledger["shed_messages"]
                        + ledger["dropped_log_records"]
                    )
            report["serve"] = self.stats()
            return report

    def stats(self) -> Dict[str, Any]:
        """Progress counters of the serve loop (thread-safe snapshot)."""
        return {
            "running": not self._finished.is_set(),
            "completed": self.completed,
            "rounds_ingested": self.rounds_ingested,
            "total_rounds": len(self._rounds) if self._rounds is not None else None,
            "readings_offered": self.readings_offered,
            "readings_ingested": self.readings_ingested,
            "syncs_completed": self.syncs_completed,
            "total_syncs": len(self._workload.sync_plan),
            "queries_served": self.queries_served,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def client(self) -> "F2CClient":
        """The facade over the served deployment.

        Safe to use freely once the loop finished; while it is running,
        prefer the handle's locked verbs (:meth:`submit_query`,
        :meth:`summarize`, :meth:`health`).
        """
        return self._client

    @property
    def running(self) -> bool:
        return not self._finished.is_set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for the workload to finish naturally; ``True`` if it did.

        *timeout* defaults to the config's ``serve_drain_timeout_s``.  The
        loop keeps serving queries while draining.  Re-raises anything the
        serve thread died of.
        """
        timeout = self._drain_timeout_s if timeout is None else timeout
        finished = self._finished.wait(timeout)
        if finished:
            self._thread.join(timeout=self._drain_timeout_s)
            self._raise_if_failed()
        return finished

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Stop the service and return its final :meth:`stats`.

        With ``drain=True`` (default) waits up to *timeout* (default: the
        config's ``serve_drain_timeout_s``) for natural completion first;
        then — completed or not — requests a graceful stop: the in-flight
        round or sync point completes, the durable logs are committed, and
        the loop exits.  Idempotent.
        """
        wait_s = self._drain_timeout_s if timeout is None else timeout
        if drain and self._error is None:
            self._finished.wait(wait_s)
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.request_stop()
        self._thread.join(timeout=max(wait_s, self._drain_timeout_s))
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise TimeoutError(
                f"serve loop did not stop within {max(wait_s, self._drain_timeout_s)}s"
            )
        self._raise_if_failed()
        return self.stats()

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Propagating an in-flight exception beats masking it with a
        # drain timeout: abort instead of draining when the body failed.
        self.shutdown(drain=exc_type is None)

    def __repr__(self) -> str:
        state = "completed" if self.completed else ("running" if self.running else "stopped")
        return (
            f"ServeHandle({state}, rounds={self.rounds_ingested}, "
            f"syncs={self.syncs_completed}, queries={self.queries_served})"
        )
