"""Sketch-based aggregation summaries.

The distributed-aggregation survey the paper builds on classifies *sketches*
among the decomposable computation approaches: fixed-size probabilistic
summaries that can be merged across nodes.  Two classic sketches are
provided — a count-min sketch for per-key frequency estimation and a
probabilistic distinct counter (a simplified Flajolet–Martin / HyperLogLog
scheme) — plus an :class:`AggregationTechnique` wrapper that replaces a
batch by a constant-size sketch summary.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, List, Optional

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import Reading, ReadingBatch


def _hash64(value: Hashable, seed: int) -> int:
    """A stable 64-bit hash of *value* mixed with *seed*."""
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class CountMinSketch:
    """Count-min sketch: mergeable approximate per-key counters.

    Estimates never under-count; over-counting is bounded by
    ``epsilon * total_count`` with probability ``1 - delta`` for
    ``width = ceil(e / epsilon)`` and ``depth = ceil(ln(1 / delta))``.
    """

    def __init__(self, width: int = 256, depth: int = 4) -> None:
        if width <= 0 or depth <= 0:
            raise ConfigurationError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._table: List[List[int]] = [[0] * width for _ in range(depth)]
        self._total = 0

    @classmethod
    def from_error_bounds(cls, epsilon: float, delta: float) -> "CountMinSketch":
        """Build a sketch sized for the requested error bounds."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ConfigurationError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(1, depth))

    def add(self, key: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        for row in range(self.depth):
            column = _hash64(key, row) % self.width
            self._table[row][column] += count
        self._total += count

    def estimate(self, key: Hashable) -> int:
        """Estimated count of *key* (never below the true count)."""
        return min(
            self._table[row][_hash64(key, row) % self.width] for row in range(self.depth)
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Merge two sketches of identical dimensions (cell-wise sum)."""
        merged = CountMinSketch(width=self.width, depth=self.depth)
        merged.update(self)
        merged.update(other)
        return merged

    def update(self, other: "CountMinSketch") -> None:
        """Fold *other* into this sketch in place (cell-wise sum).

        The merge primitive decomposable aggregation relies on: folding a
        cached per-segment sketch into an accumulator costs one bulk pass
        over the table instead of re-adding every row the segment held.
        *other* is not modified.
        """
        if (self.width, self.depth) != (other.width, other.depth):
            raise ConfigurationError("cannot merge sketches with different dimensions")
        for mine, theirs in zip(self._table, other._table):
            mine[:] = [a + b for a, b in zip(mine, theirs)]
        self._total += other._total

    @property
    def total(self) -> int:
        return self._total

    def size_bytes(self) -> int:
        """Approximate serialised size (4 bytes per cell)."""
        return self.width * self.depth * 4


class DistinctCounter:
    """Probabilistic distinct-value counter (stochastic averaging of max leading zeros).

    A simplified HyperLogLog: values hash into ``2**precision`` registers,
    each remembering the maximum number of leading zero bits seen.  Accuracy
    is roughly ``1.04 / sqrt(2**precision)`` relative error, and two counters
    merge by taking register-wise maxima.
    """

    def __init__(self, precision: int = 10) -> None:
        if not 4 <= precision <= 16:
            raise ConfigurationError("precision must be between 4 and 16")
        self.precision = precision
        self._register_count = 1 << precision
        self._registers = [0] * self._register_count

    def add(self, value: Hashable) -> None:
        hashed = _hash64(value, seed=0xC0FFEE)
        register = hashed & (self._register_count - 1)
        remaining = hashed >> self.precision
        rank = 1
        while remaining & 1 == 0 and rank < 64 - self.precision:
            rank += 1
            remaining >>= 1
        self._registers[register] = max(self._registers[register], rank)

    def estimate(self) -> float:
        """Estimated number of distinct values added."""
        m = self._register_count
        alpha = 0.7213 / (1.0 + 1.079 / m)
        indicator = sum(2.0 ** (-register) for register in self._registers)
        raw = alpha * m * m / indicator
        zero_registers = self._registers.count(0)
        if raw <= 2.5 * m and zero_registers:
            return m * math.log(m / zero_registers)
        return raw

    def merge(self, other: "DistinctCounter") -> "DistinctCounter":
        merged = DistinctCounter(precision=self.precision)
        merged.update(self)
        merged.update(other)
        return merged

    def update(self, other: "DistinctCounter") -> None:
        """Fold *other* into this counter in place (register-wise maxima)."""
        if self.precision != other.precision:
            raise ConfigurationError("cannot merge counters with different precision")
        self._registers[:] = [
            max(a, b) for a, b in zip(self._registers, other._registers)
        ]

    def size_bytes(self) -> int:
        """Approximate serialised size (1 byte per register)."""
        return self._register_count


class SketchSummaryAggregation(AggregationTechnique):
    """Replaces a batch by a constant-size sketch summary reading.

    The output batch contains one synthetic reading per category whose wire
    size is the serialised sketch size — a drastic (lossy) reduction suitable
    for consumers that only need frequency/distinct statistics upstream.
    """

    name = "sketch_summary"

    def __init__(self, width: int = 256, depth: int = 4, precision: int = 10) -> None:
        self.width = width
        self.depth = depth
        self.precision = precision
        self.last_frequency_sketches: dict[str, CountMinSketch] = {}
        self.last_distinct_counters: dict[str, DistinctCounter] = {}

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        frequency: dict[str, CountMinSketch] = {}
        distinct: dict[str, DistinctCounter] = {}
        latest_timestamp: dict[str, float] = {}
        for reading in batch:
            category = reading.category
            frequency.setdefault(category, CountMinSketch(self.width, self.depth)).add(reading.sensor_id)
            distinct.setdefault(category, DistinctCounter(self.precision)).add(reading.sensor_id)
            latest_timestamp[category] = max(latest_timestamp.get(category, 0.0), reading.timestamp)

        output = ReadingBatch()
        for category in sorted(frequency):
            sketch = frequency[category]
            counter = distinct[category]
            output.append(
                Reading(
                    sensor_id=f"sketch/{category}",
                    sensor_type="sketch_summary",
                    category=category,
                    value=round(counter.estimate(), 2),
                    timestamp=latest_timestamp[category],
                    size_bytes=sketch.size_bytes() + counter.size_bytes(),
                    tags={"total_readings": sketch.total, "technique": self.name},
                )
            )
        self.last_frequency_sketches = frequency
        self.last_distinct_counters = distinct
        return self._result(batch, output, categories=len(frequency))
