"""Window averaging — a decomposable aggregation function.

The distributed-aggregation survey the paper cites ([20]) classifies
*averaging* among the decomposable computation approaches: each fog node can
average its own window and the parent can combine child averages weighted by
their counts.  Averaging is a lossy technique: a window of N readings from a
sensor is replaced by a single summary reading, so it trades temporal
resolution for a large volume reduction.  It is one of the "many other data
aggregation techniques [that] could be easily applied in this architecture"
the paper mentions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import Reading, ReadingBatch, ReadingColumns


class WindowAveraging(AggregationTechnique):
    """Replaces each sensor's readings within a time window by their average.

    Non-numeric readings are passed through untouched.  The summary reading
    keeps the sensor's identity and wire size, is stamped with the window's
    end time, and carries ``aggregated_count`` in its tags so parents can
    compute correctly weighted combined averages.
    """

    name = "window_averaging"

    def __init__(self, window_seconds: float = 900.0) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        self.window_seconds = window_seconds

    def _window_index(self, timestamp: float) -> int:
        return math.floor(timestamp / self.window_seconds)

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        # Consume the columns directly: group rows per (sensor, window) with
        # running sums, then emit one summary row per group — no per-reading
        # object materialization.
        columns = batch.columns
        window_index = self._window_index
        # (sensor_id, window) -> [value_sum, count, last_row_index]
        groups: Dict[Tuple[str, int], List] = {}
        passthrough: List[int] = []
        index = 0
        for sensor_id, value, timestamp in zip(
            columns.sensor_ids, columns.values, columns.timestamps
        ):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                key = (sensor_id, window_index(timestamp))
                group = groups.get(key)
                if group is None:
                    groups[key] = [float(value), 1, index]
                else:
                    group[0] += float(value)
                    group[1] += 1
                    group[2] = index
            else:
                passthrough.append(index)
            index += 1

        out = ReadingColumns()
        for (_, group_window), (value_sum, count, template_index) in sorted(groups.items()):
            window_end = (group_window + 1) * self.window_seconds
            out.append_row(
                columns.sensor_ids[template_index],
                columns.sensor_types[template_index],
                columns.categories[template_index],
                round(value_sum / count, 6),
                window_end,
                columns.fog_node_ids[template_index],
                columns.sizes[template_index],
                columns.sequences[template_index],
                {
                    **columns.tags_at(template_index),
                    "aggregated_count": count,
                    "technique": self.name,
                },
            )
        if passthrough:
            out.extend_columns(columns.gather(passthrough))

        return self._result(
            batch,
            ReadingBatch.from_columns(out),
            windows=len(groups),
            window_seconds=self.window_seconds,
            passthrough=len(passthrough),
        )

    @staticmethod
    def combine_averages(summaries: ReadingBatch) -> Dict[str, float]:
        """Combine per-node averages into per-sensor global averages.

        Demonstrates the decomposable property: given summary readings that
        carry ``aggregated_count`` tags, the correctly weighted global mean
        per sensor is recovered without the raw data.
        """
        weighted: Dict[str, Tuple[float, int]] = {}
        for summary in summaries:
            count = int(summary.tags.get("aggregated_count", 1))
            total, existing = weighted.get(summary.sensor_id, (0.0, 0))
            weighted[summary.sensor_id] = (total + float(summary.value) * count, existing + count)
        return {
            sensor_id: total / count
            for sensor_id, (total, count) in weighted.items()
            if count > 0
        }
