"""Window averaging — a decomposable aggregation function.

The distributed-aggregation survey the paper cites ([20]) classifies
*averaging* among the decomposable computation approaches: each fog node can
average its own window and the parent can combine child averages weighted by
their counts.  Averaging is a lossy technique: a window of N readings from a
sensor is replaced by a single summary reading, so it trades temporal
resolution for a large volume reduction.  It is one of the "many other data
aggregation techniques [that] could be easily applied in this architecture"
the paper mentions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import Reading, ReadingBatch


class WindowAveraging(AggregationTechnique):
    """Replaces each sensor's readings within a time window by their average.

    Non-numeric readings are passed through untouched.  The summary reading
    keeps the sensor's identity and wire size, is stamped with the window's
    end time, and carries ``aggregated_count`` in its tags so parents can
    compute correctly weighted combined averages.
    """

    name = "window_averaging"

    def __init__(self, window_seconds: float = 900.0) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        self.window_seconds = window_seconds

    def _window_index(self, timestamp: float) -> int:
        return math.floor(timestamp / self.window_seconds)

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        groups: Dict[Tuple[str, int], List[Reading]] = {}
        passthrough: List[Reading] = []
        for reading in batch:
            if isinstance(reading.value, (int, float)) and not isinstance(reading.value, bool):
                key = (reading.sensor_id, self._window_index(reading.timestamp))
                groups.setdefault(key, []).append(reading)
            else:
                passthrough.append(reading)

        output = ReadingBatch()
        for (_, window_index), readings in sorted(groups.items()):
            values = [float(r.value) for r in readings]
            template = readings[-1]
            window_end = (window_index + 1) * self.window_seconds
            summary = Reading(
                sensor_id=template.sensor_id,
                sensor_type=template.sensor_type,
                category=template.category,
                value=round(sum(values) / len(values), 6),
                timestamp=window_end,
                fog_node_id=template.fog_node_id,
                size_bytes=template.size_bytes,
                sequence=template.sequence,
                tags={**template.tags, "aggregated_count": len(readings), "technique": self.name},
            )
            output.append(summary)
        for reading in passthrough:
            output.append(reading)

        return self._result(
            batch,
            output,
            windows=len(groups),
            window_seconds=self.window_seconds,
            passthrough=len(passthrough),
        )

    @staticmethod
    def combine_averages(summaries: ReadingBatch) -> Dict[str, float]:
        """Combine per-node averages into per-sensor global averages.

        Demonstrates the decomposable property: given summary readings that
        carry ``aggregated_count`` tags, the correctly weighted global mean
        per sensor is recovered without the raw data.
        """
        weighted: Dict[str, Tuple[float, int]] = {}
        for summary in summaries:
            count = int(summary.tags.get("aggregated_count", 1))
            total, existing = weighted.get(summary.sensor_id, (0.0, 0))
            weighted[summary.sensor_id] = (total + float(summary.value) * count, existing + count)
        return {
            sensor_id: total / count
            for sensor_id, (total, count) in weighted.items()
            if count > 0
        }
