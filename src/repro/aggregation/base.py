"""Aggregation technique interface.

A technique consumes a :class:`~repro.sensors.readings.ReadingBatch` and
produces an :class:`AggregationResult`: the (possibly reduced) batch that
continues through the pipeline, plus byte accounting.  Techniques that work
on the *encoded* representation (compression) cannot express their output as
readings; they report the post-encoding byte count in ``encoded_bytes`` while
passing the logical batch through unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sensors.readings import ReadingBatch


@dataclass
class AggregationResult:
    """Outcome of applying one technique (or a pipeline) to a batch."""

    technique: str
    batch: ReadingBatch
    input_readings: int
    input_bytes: int
    encoded_bytes: Optional[int] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def output_readings(self) -> int:
        return len(self.batch)

    @property
    def output_bytes(self) -> int:
        """Bytes that would be transmitted upwards after this technique.

        For reading-level techniques this is the surviving readings' wire
        size; for encoding-level techniques it is the encoded size.
        """
        if self.encoded_bytes is not None:
            return self.encoded_bytes
        return self.batch.total_bytes

    @property
    def bytes_removed(self) -> int:
        return self.input_bytes - self.output_bytes

    @property
    def reduction_ratio(self) -> float:
        """Fraction of input bytes eliminated (the paper's "efficiency")."""
        if self.input_bytes == 0:
            return 0.0
        return self.bytes_removed / self.input_bytes


class AggregationTechnique(ABC):
    """Base class for all aggregation techniques."""

    name: str = "aggregation"

    @abstractmethod
    def apply(self, batch: ReadingBatch) -> AggregationResult:
        """Apply the technique to *batch* and return the result."""

    def _result(
        self,
        input_batch: ReadingBatch,
        output_batch: ReadingBatch,
        encoded_bytes: Optional[int] = None,
        **details: object,
    ) -> AggregationResult:
        return AggregationResult(
            technique=self.name,
            batch=output_batch,
            input_readings=len(input_batch),
            input_bytes=input_batch.total_bytes,
            encoded_bytes=encoded_bytes,
            details=dict(details),
        )


class NoOpAggregation(AggregationTechnique):
    """Passes the batch through untouched (the centralized baseline's 'filtering')."""

    name = "noop"

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        return self._result(batch, batch)
