"""Compression of accumulated batches at fog layer 1.

"As data is collected and transmitted to an upper level delayed, there are
some options to accumulate a reasonable amount of data and compute
compression, in order to obviously reduce the amount of data transfer."
(Section V.A.)

The paper used the Zip format and measured 1,360,043,206 bytes compressing
down to 295,428,463 bytes (≈78 % reduction).  Two implementations are
provided:

* :class:`DeflateCompression` — actually compresses the batch's wire
  encoding with ``zlib`` (the DEFLATE algorithm Zip uses) and reports the
  measured compressed size.
* :class:`CalibratedCompression` — applies a fixed compression ratio,
  defaulting to the paper's measured factor, for analytic estimates where
  generating and compressing terabytes of synthetic payload would be
  pointless.
"""

from __future__ import annotations

import zlib

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import ReadingBatch

#: The compression factor the paper measured with Zip at fog layer 1.
PAPER_COMPRESSION_RATIO = 295_428_463 / 1_360_043_206


class DeflateCompression(AggregationTechnique):
    """Compresses the batch's encoded payload with DEFLATE (zlib).

    The logical readings pass through unchanged (the receiver decompresses
    and recovers them); the result's ``encoded_bytes`` is the size actually
    transmitted.
    """

    name = "deflate_compression"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ConfigurationError("zlib compression level must be in [0, 9]")
        self.level = level

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        payload = batch.encode()
        compressed = zlib.compress(payload, self.level)
        measured_ratio = (len(compressed) / len(payload)) if payload else 1.0
        return self._result(
            batch,
            batch,
            encoded_bytes=len(compressed),
            uncompressed_bytes=len(payload),
            measured_ratio=round(measured_ratio, 4),
            level=self.level,
        )

    @staticmethod
    def decompress(payload: bytes) -> bytes:
        """Inverse transform, provided for round-trip tests."""
        return zlib.decompress(payload)


class CalibratedCompression(AggregationTechnique):
    """Applies a fixed compression ratio to the batch's byte volume.

    Used by the analytic traffic estimator to reproduce the paper's Fig. 7
    numbers: the ratio defaults to the paper's measured Zip factor
    (≈0.217, i.e. ≈78 % reduction).
    """

    name = "calibrated_compression"

    def __init__(self, ratio: float = PAPER_COMPRESSION_RATIO) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError("compression ratio must be in (0, 1]")
        self.ratio = ratio

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        compressed_bytes = int(round(batch.total_bytes * self.ratio))
        return self._result(
            batch,
            batch,
            encoded_bytes=compressed_bytes,
            ratio=self.ratio,
        )
