"""Data-aggregation techniques applied at fog layer 1.

Section V of the paper applies two basic techniques — redundant-data
elimination and compression — at fog layer 1 before data moves upwards, and
surveys richer families (decomposable functions such as averaging, and
sketch-based summaries).  This package implements:

* :mod:`repro.aggregation.base` — the technique interface and result record.
* :mod:`repro.aggregation.redundancy` — redundant-data elimination.
* :mod:`repro.aggregation.compression` — DEFLATE compression of accumulated
  batches, plus a calibrated mode pinned to the paper's measured zip factor.
* :mod:`repro.aggregation.averaging` — window-averaging (a decomposable
  function from the survey's computation taxonomy).
* :mod:`repro.aggregation.sketches` — count-min sketch and a probabilistic
  distinct counter (the "sketches" family).
* :mod:`repro.aggregation.pipeline` — chaining techniques in order, as the
  paper does (redundancy elimination, then compression).
"""

from repro.aggregation.averaging import WindowAveraging
from repro.aggregation.base import AggregationResult, AggregationTechnique, NoOpAggregation
from repro.aggregation.compression import CalibratedCompression, DeflateCompression
from repro.aggregation.pipeline import AggregationPipeline
from repro.aggregation.redundancy import RedundantDataElimination
from repro.aggregation.sketches import CountMinSketch, DistinctCounter, SketchSummaryAggregation

__all__ = [
    "AggregationPipeline",
    "AggregationResult",
    "AggregationTechnique",
    "CalibratedCompression",
    "CountMinSketch",
    "DeflateCompression",
    "DistinctCounter",
    "NoOpAggregation",
    "RedundantDataElimination",
    "SketchSummaryAggregation",
    "WindowAveraging",
]
