"""Chaining aggregation techniques.

The paper applies redundant-data elimination first and compression second at
fog layer 1.  :class:`AggregationPipeline` runs an ordered list of techniques
and produces a combined :class:`~repro.aggregation.base.AggregationResult`
whose per-stage breakdown the benchmarks report (raw → after redundancy →
after compression, exactly the series of Fig. 7).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import ReadingBatch


class AggregationPipeline(AggregationTechnique):
    """Applies techniques in order, feeding each the previous output batch."""

    name = "pipeline"

    def __init__(self, techniques: Sequence[AggregationTechnique]) -> None:
        if not techniques:
            raise ConfigurationError("pipeline requires at least one technique")
        self.techniques = list(techniques)
        self.last_stage_results: List[AggregationResult] = []

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        stage_results: List[AggregationResult] = []
        current = batch
        encoded_bytes: Optional[int] = None
        for technique in self.techniques:
            result = technique.apply(current)
            stage_results.append(result)
            current = result.batch
            # The most recent encoding-level technique defines the transmitted size.
            if result.encoded_bytes is not None:
                encoded_bytes = result.encoded_bytes
        self.last_stage_results = stage_results

        combined = AggregationResult(
            technique=self.describe(),
            batch=current,
            input_readings=len(batch),
            input_bytes=batch.total_bytes,
            encoded_bytes=encoded_bytes,
            details={
                "stages": [
                    {
                        "technique": result.technique,
                        "input_bytes": result.input_bytes,
                        "output_bytes": result.output_bytes,
                        "reduction_ratio": round(result.reduction_ratio, 4),
                    }
                    for result in stage_results
                ]
            },
        )
        return combined

    def describe(self) -> str:
        return " -> ".join(technique.name for technique in self.techniques)

    def stage_bytes(self, input_bytes: Optional[int] = None) -> List[int]:
        """Byte volume after each stage of the most recent :meth:`apply` call.

        The returned list starts with the pipeline's input volume, so a two
        stage pipeline yields three numbers — the raw / aggregated /
        compressed series of Fig. 7.
        """
        if not self.last_stage_results:
            raise ConfigurationError("pipeline has not been applied yet")
        series = [input_bytes if input_bytes is not None else self.last_stage_results[0].input_bytes]
        for result in self.last_stage_results:
            series.append(result.output_bytes)
        return series
