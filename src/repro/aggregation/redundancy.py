"""Redundant-data elimination.

"In this technique we focus on providing a basic yet effective solution to
easily reduce the amount of duplicated data collected from the sensors
layer.  For example, in case of weather measurement, each sensor sends the
current temperature measurements, but this type of data is prone to
repetitions, so eliminating them may easily reduce such amount of data."
(Section V.A.)

Two policies are provided:

* ``scope="batch"`` — a reading is redundant if an identical
  (sensor, type, value) observation already appeared in the batch.
* ``scope="consecutive"`` — a reading is redundant only if it repeats that
  sensor's *immediately previous* value (a stricter, order-aware policy that
  never discards a genuine return to an earlier value).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import ReadingBatch


class RedundantDataElimination(AggregationTechnique):
    """Removes duplicated readings from a batch."""

    name = "redundant_data_elimination"

    def __init__(self, scope: str = "batch") -> None:
        if scope not in ("batch", "consecutive"):
            raise ConfigurationError(f"unknown scope: {scope!r} (use 'batch' or 'consecutive')")
        self.scope = scope

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        if self.scope == "batch":
            output, removed = self._dedup_batch(batch)
        else:
            output, removed = self._dedup_consecutive(batch)
        return self._result(batch, output, removed_readings=removed, scope=self.scope)

    @staticmethod
    def _dedup_batch(batch: ReadingBatch) -> Tuple[ReadingBatch, int]:
        # Dedup runs on the value column directly (the dedup key is
        # (sensor, type, value)); survivors are gathered column-wise.
        columns = batch.columns
        seen: Set[tuple] = set()
        add = seen.add
        keep = []
        keep_append = keep.append
        removed = 0
        index = 0
        for key in zip(columns.sensor_ids, columns.sensor_types, columns.values):
            if key in seen:
                removed += 1
            else:
                add(key)
                keep_append(index)
            index += 1
        if not removed:
            # Still a fresh batch (cheap column copy): apply() has always
            # returned an independent output, and callers may mutate it.
            return ReadingBatch.from_columns(columns.copy()), 0
        return ReadingBatch.from_columns(columns.gather(keep)), removed

    @staticmethod
    def _dedup_consecutive(batch: ReadingBatch) -> Tuple[ReadingBatch, int]:
        columns = batch.columns
        sensor_ids = columns.sensor_ids
        timestamps = columns.timestamps
        sequences = columns.sequences
        values = columns.values
        sensor_types = columns.sensor_types
        # Process in timestamp order per sensor so "previous value" is well defined.
        ordered = sorted(
            range(len(sensor_ids)), key=lambda i: (sensor_ids[i], timestamps[i], sequences[i])
        )
        last_value: Dict[Tuple[str, str], object] = {}
        keep = []
        removed = 0
        for i in ordered:
            key = (sensor_ids[i], sensor_types[i])
            if key in last_value and last_value[key] == values[i]:
                removed += 1
                continue
            last_value[key] = values[i]
            keep.append(i)
        return ReadingBatch.from_columns(columns.gather(keep)), removed
