"""Redundant-data elimination.

"In this technique we focus on providing a basic yet effective solution to
easily reduce the amount of duplicated data collected from the sensors
layer.  For example, in case of weather measurement, each sensor sends the
current temperature measurements, but this type of data is prone to
repetitions, so eliminating them may easily reduce such amount of data."
(Section V.A.)

Two policies are provided:

* ``scope="batch"`` — a reading is redundant if an identical
  (sensor, type, value) observation already appeared in the batch.
* ``scope="consecutive"`` — a reading is redundant only if it repeats that
  sensor's *immediately previous* value (a stricter, order-aware policy that
  never discards a genuine return to an earlier value).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import ConfigurationError
from repro.aggregation.base import AggregationResult, AggregationTechnique
from repro.sensors.readings import ReadingBatch


class RedundantDataElimination(AggregationTechnique):
    """Removes duplicated readings from a batch."""

    name = "redundant_data_elimination"

    def __init__(self, scope: str = "batch") -> None:
        if scope not in ("batch", "consecutive"):
            raise ConfigurationError(f"unknown scope: {scope!r} (use 'batch' or 'consecutive')")
        self.scope = scope

    def apply(self, batch: ReadingBatch) -> AggregationResult:
        if self.scope == "batch":
            output, removed = self._dedup_batch(batch)
        else:
            output, removed = self._dedup_consecutive(batch)
        return self._result(batch, output, removed_readings=removed, scope=self.scope)

    @staticmethod
    def _dedup_batch(batch: ReadingBatch) -> Tuple[ReadingBatch, int]:
        seen: Set[tuple] = set()
        output = ReadingBatch()
        removed = 0
        for reading in batch:
            key = reading.dedup_key()
            if key in seen:
                removed += 1
                continue
            seen.add(key)
            output.append(reading)
        return output, removed

    @staticmethod
    def _dedup_consecutive(batch: ReadingBatch) -> Tuple[ReadingBatch, int]:
        last_value: Dict[Tuple[str, str], object] = {}
        output = ReadingBatch()
        removed = 0
        # Process in timestamp order per sensor so "previous value" is well defined.
        ordered = sorted(batch, key=lambda r: (r.sensor_id, r.timestamp, r.sequence))
        for reading in ordered:
            key = (reading.sensor_id, reading.sensor_type)
            if key in last_value and last_value[key] == reading.value:
                removed += 1
                continue
            last_value[key] = reading.value
            output.append(reading)
        return output, removed
