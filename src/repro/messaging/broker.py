"""The in-process MQTT-like broker.

Semantics implemented (the subset the F2C data plane relies on):

* **QoS 0** ("at most once") — the broker delivers the message to the
  subscribers registered at publish time and forgets it.
* **QoS 1** ("at least once") — the broker additionally keeps the message in
  a per-subscriber outbox until the subscriber acknowledges it, and can
  redeliver unacknowledged messages.
* **Retained messages** — the broker keeps the last retained message per
  topic and replays it to new subscribers whose filter matches.

Delivery is synchronous (the subscriber callback runs inside ``publish``),
which keeps the simulation deterministic.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import ConfigurationError, RoutingError
from repro.messaging.topics import match_levels, topic_matches, validate_topic


@dataclass(frozen=True)
class Message:
    """A published message."""

    topic: str
    payload: bytes
    qos: int = 0
    retain: bool = False
    message_id: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.qos not in (0, 1):
            raise ConfigurationError(f"unsupported QoS level: {self.qos}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise ConfigurationError("payload must be bytes")

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


MessageHandler = Callable[[Message], None]


@dataclass
class _Subscription:
    client_id: str
    topic_filter: str
    handler: MessageHandler
    qos: int = 0
    batched: bool = False
    filter_levels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.filter_levels:
            self.filter_levels = tuple(self.topic_filter.split("/"))


class Broker:
    """An in-process publish/subscribe broker with MQTT-like semantics.

    Topic-routing state is cached per distinct published topic up to
    ``_TOPIC_CACHE_LIMIT`` entries (city telemetry uses a small, fixed
    section × sensor-type topic set); beyond that the caches reset rather
    than grow without bound.

    Subscriptions come in two delivery modes:

    * **immediate** (default) — the handler runs synchronously inside
      ``publish``, one call per message (classic MQTT callback style);
    * **batched** — matching messages are parked in a per-client inbox and
      delivered later in bulk via :meth:`drain_inbox` /
      :meth:`flush_inboxes`.  This is the high-throughput path: consumers
      that process a whole inbox at once (e.g. a fog node running its
      acquisition block per batch) avoid paying per-message overheads.

    Inboxes are **bounded** when the broker is built with *inbox_limit*: a
    batched client whose inbox is full sheds further matching messages (QoS
    0 overload behaviour) instead of growing without bound under a
    long-running serve loop.  Every shed is counted — per client and in
    total (:meth:`stats`), never silent.  Likewise, a batched client that
    unsubscribes loses its parked inbox (counted as shed), and messages
    published between that unsubscribe and a later re-subscribe — which no
    inbox existed to hold — are counted as shed too, so
    ``published-to-batched = delivered + shed`` holds across the client's
    whole subscribe/unsubscribe history.
    """

    _TOPIC_CACHE_LIMIT = 65_536

    def __init__(self, name: str = "broker", inbox_limit: Optional[int] = None) -> None:
        if inbox_limit is not None and inbox_limit < 1:
            raise ConfigurationError(
                f"inbox_limit must be a positive message count (or None), got {inbox_limit}"
            )
        self.name = name
        self._inbox_limit = inbox_limit
        self._subscriptions: List[_Subscription] = []
        self._retained: Dict[str, Message] = {}
        self._pending_acks: Dict[Tuple[str, int], Message] = {}
        self._inboxes: Dict[str, List[Message]] = {}
        # Topic routing cache: city telemetry reuses a small set of topics
        # (one per section × sensor type), so memoizing "which subscriptions
        # match this topic" turns publish from O(#subscriptions) wildcard
        # matching into a dict hit.  A cached topic is by construction an
        # already-validated one, so the hot publish path pays exactly one
        # dict lookup per message — validation and matching both run only on
        # the miss path.  Each entry also carries the gap clients (batched
        # unsubscribers, see _gap_filters) whose dropped filters match the
        # topic, so shed accounting rides the same dict hit.  The cache is
        # invalidated whenever the subscription set changes — which is also
        # the only time _gap_filters changes.
        self._match_cache: Dict[str, Tuple[List[_Subscription], Tuple[str, ...]]] = {}
        # client id -> the batched filter levels it dropped on unsubscribe
        # while still unsubscribed.  Messages matching these have no inbox
        # to land in; they are counted as shed until the client
        # re-subscribes batched (which clears its gap entry).
        self._gap_filters: Dict[str, List[Tuple[str, ...]]] = {}
        self._message_ids = itertools.count(1)
        self._published_count = 0
        self._delivered_count = 0
        self._published_bytes = 0
        self._shed_messages = 0
        self._shed_by_client: Dict[str, int] = {}
        # Chaos-injection state (see corrupt_next / partition): pending
        # payload corruptions and the clients currently cut off.  Both are
        # deterministic — corruption positions come from a seeded RNG, and
        # partition losses ride the same counted-shed path as inbox
        # overflow, so every injected fault remains fully accounted.
        self._corrupt_pending = 0
        self._corrupt_rng: Optional[random.Random] = None
        self._corrupted_count = 0
        self._partitioned: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Subscription management
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        client_id: str,
        topic_filter: str,
        handler: MessageHandler,
        qos: int = 0,
        batched: bool = False,
    ) -> None:
        """Register *handler* for messages matching *topic_filter*.

        Retained messages matching the filter are replayed immediately.
        With ``batched=True`` matching messages are queued in the client's
        inbox instead of being handed to *handler* inside ``publish``; the
        handler is still invoked (per message) by :meth:`flush_inboxes`, and
        bulk consumers can bypass it entirely with :meth:`drain_inbox`.
        """
        validate_topic(topic_filter, allow_wildcards=True)
        if qos not in (0, 1):
            raise ConfigurationError(f"unsupported QoS level: {qos}")
        if batched and qos != 0:
            raise ConfigurationError("batched subscriptions support QoS 0 only")
        subscription = _Subscription(
            client_id=client_id, topic_filter=topic_filter, handler=handler, qos=qos, batched=batched
        )
        self._subscriptions.append(subscription)
        self._match_cache.clear()
        if batched:
            # A batched re-subscribe closes the client's unsubscribe gap:
            # from here on matching messages land in a live inbox again.
            self._gap_filters.pop(client_id, None)
        for topic, message in self._retained.items():
            if topic_matches(topic_filter, topic):
                self._deliver(subscription, message)

    def unsubscribe(self, client_id: str, topic_filter: Optional[str] = None) -> int:
        """Remove a client's subscriptions (all of them, or one filter).

        A batched client that loses its last batched subscription also
        loses its parked inbox — those messages can never be delivered and
        are counted as shed, as are messages matching the dropped batched
        filters published before the client re-subscribes (see
        :meth:`stats`).
        """
        removed_batched = [
            s.filter_levels
            for s in self._subscriptions
            if s.client_id == client_id
            and s.batched
            and (topic_filter is None or s.topic_filter == topic_filter)
        ]
        before = len(self._subscriptions)
        self._subscriptions = [
            s
            for s in self._subscriptions
            if not (s.client_id == client_id and (topic_filter is None or s.topic_filter == topic_filter))
        ]
        self._match_cache.clear()
        # A client with no remaining batched subscriptions can never receive
        # its parked messages; shed the inbox (counted, never silent) rather
        # than report ghosts, and remember the dropped filters so messages
        # published during the unsubscribe gap are counted as shed too.
        if not any(s.client_id == client_id and s.batched for s in self._subscriptions):
            inbox = self._inboxes.pop(client_id, None)
            if inbox:
                self._count_shed(client_id, len(inbox))
            if removed_batched:
                gaps = self._gap_filters.setdefault(client_id, [])
                for levels in removed_batched:
                    if levels not in gaps:
                        gaps.append(levels)
        return before - len(self._subscriptions)

    def subscriptions_for(self, client_id: str) -> List[str]:
        return [s.topic_filter for s in self._subscriptions if s.client_id == client_id]

    # ------------------------------------------------------------------ #
    # Chaos injection (scenario engine hooks)
    # ------------------------------------------------------------------ #
    def corrupt_next(self, count: int, seed: int = 0) -> None:
        """Arm deterministic corruption of the next *count* published payloads.

        Each armed payload has one byte XOR-flipped at a position drawn from
        a ``random.Random(seed)`` stream, so the same (scenario, seed) pair
        always mangles the same bytes.  Receivers treat the frame/CSV as
        undecodable and count it in ``dropped_payloads`` — the corruption is
        a *counted* loss, never a silent one.  Empty payloads still consume
        an armed slot (there is nothing to flip).
        """
        if count < 0:
            raise ConfigurationError(f"corrupt count must be non-negative, got {count}")
        self._corrupt_pending += count
        if self._corrupt_rng is None:
            self._corrupt_rng = random.Random(seed)

    def partition(self, client_id: str) -> None:
        """Cut *client_id* off from the broker (network partition).

        Matching messages published while partitioned are shed-and-counted
        through the same path as bounded-inbox overflow, so the conservation
        equation ``published-to-client = delivered + shed`` keeps holding.
        """
        self._partitioned.add(client_id)

    def heal(self, client_id: str) -> None:
        """Reconnect a previously :meth:`partition`-ed client."""
        self._partitioned.discard(client_id)

    def _maybe_corrupt(self, payload: bytes) -> bytes:
        if self._corrupt_pending <= 0:
            return payload
        self._corrupt_pending -= 1
        self._corrupted_count += 1
        if not payload:
            return payload
        rng = self._corrupt_rng
        assert rng is not None
        position = rng.randrange(len(payload))
        mangled = bytearray(payload)
        mangled[position] ^= 0xFF
        return bytes(mangled)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        timestamp: float = 0.0,
    ) -> Message:
        """Publish *payload* on *topic* and deliver to matching subscribers."""
        cached = self._match_cache.get(topic)
        if cached is None:
            # Miss path: validate once, then match once — a cache hit means
            # the topic was already validated, so the hot path skips both.
            validate_topic(topic, allow_wildcards=False)
            if len(self._match_cache) >= self._TOPIC_CACHE_LIMIT:
                # Workloads publishing unbounded distinct topics (per-message
                # suffixes) must not leak; dropping the cache just costs a
                # re-validate/re-match on the next publish of each topic.
                self._match_cache.clear()
            topic_levels = topic.split("/")
            matching = [s for s in self._subscriptions if match_levels(s.filter_levels, topic_levels)]
            gap_clients = tuple(
                client_id
                for client_id, filters in self._gap_filters.items()
                if any(match_levels(levels, topic_levels) for levels in filters)
            )
            cached = self._match_cache[topic] = (matching, gap_clients)
        matching, gap_clients = cached
        for client_id in gap_clients:
            # The message would have been parked for this batched client,
            # but it unsubscribed and has not re-subscribed: no inbox
            # exists.  Count the miss instead of losing it silently.
            self._count_shed(client_id)
        if self._corrupt_pending:
            payload = self._maybe_corrupt(bytes(payload))
        message = Message(
            topic=topic,
            payload=bytes(payload),
            qos=qos,
            retain=retain,
            message_id=next(self._message_ids),
            timestamp=timestamp,
        )
        self._published_count += 1
        self._published_bytes += message.size_bytes
        if retain:
            self._retained[topic] = message
        enqueued_clients = None
        for subscription in matching:
            if subscription.batched:
                # One inbox copy per client per message, even when several of
                # the client's batched filters match (a bulk consumer must
                # not see duplicates).
                if enqueued_clients is None:
                    enqueued_clients = set()
                elif subscription.client_id in enqueued_clients:
                    continue
                enqueued_clients.add(subscription.client_id)
            self._deliver(subscription, message)
        return message

    def publish_columns(
        self,
        topic: str,
        columns,
        qos: int = 0,
        retain: bool = False,
        timestamp: float = 0.0,
        frame_format: Optional[str] = None,
    ) -> Message:
        """Publish a whole :class:`~repro.sensors.readings.ReadingColumns`
        batch as one column-frame payload (the wire fast path: one frame per
        node-round instead of one CSV payload per reading).

        *frame_format* selects the frame layout (``"binary"``, ``"json"``
        or ``"binary-v2"`` — the dictionary-compressed layout that assumes
        both ends share the deployment vocabulary); ``None`` uses the
        process-wide default.  Receivers auto-detect the layout, so
        publishers can switch formats without coordinating.
        """
        return self.publish(
            topic,
            columns.encode_frame(format=frame_format),
            qos=qos,
            retain=retain,
            timestamp=timestamp,
        )

    def _count_shed(self, client_id: str, count: int = 1) -> None:
        self._shed_messages += count
        self._shed_by_client[client_id] = self._shed_by_client.get(client_id, 0) + count

    def _deliver(self, subscription: _Subscription, message: Message) -> None:
        if subscription.client_id in self._partitioned:
            # A partitioned client is unreachable: the message is shed and
            # counted (QoS 0 loss), exactly like bounded-inbox overflow.
            self._count_shed(subscription.client_id)
            return
        if subscription.batched:
            inbox = self._inboxes.setdefault(subscription.client_id, [])
            limit = self._inbox_limit
            if limit is not None and len(inbox) >= limit:
                # Bounded inbox: overload sheds (QoS 0) and is counted —
                # the parked backlog never grows without bound.
                self._count_shed(subscription.client_id)
                return
            inbox.append(message)
            self._delivered_count += 1
            return
        effective_qos = min(subscription.qos, message.qos)
        if effective_qos >= 1:
            self._pending_acks[(subscription.client_id, message.message_id)] = message
        subscription.handler(message)
        self._delivered_count += 1

    # ------------------------------------------------------------------ #
    # Batched delivery (inboxes)
    # ------------------------------------------------------------------ #
    def drain_inbox(self, client_id: str) -> List[Message]:
        """Return and clear the queued messages of a batched subscriber."""
        inbox = self._inboxes.get(client_id)
        if not inbox:
            return []
        self._inboxes[client_id] = []
        return inbox

    def inbox_size(self, client_id: str) -> int:
        """Number of messages currently queued for a batched subscriber."""
        return len(self._inboxes.get(client_id, ()))

    def inbox_clients(self) -> List[str]:
        """Clients that currently have queued messages."""
        return [client_id for client_id, inbox in self._inboxes.items() if inbox]

    def flush_inboxes(self, client_id: Optional[str] = None) -> int:
        """Deliver queued messages through the batched subscriptions' handlers.

        Returns the number of messages actually handed to a handler.  Parked
        messages whose batched subscription has since been removed are
        dropped (QoS 0) and counted as shed.  Bulk consumers that want a
        single callback per inbox should use :meth:`drain_inbox` instead.
        """
        flushed = 0
        targets = [client_id] if client_id is not None else list(self._inboxes.keys())
        for target in targets:
            # The client's batched subscriptions are fixed for the duration
            # of the flush: filter them once and match with the precomputed
            # filter levels instead of re-validating topic strings per
            # (message, subscription) pair.
            subscriptions = [
                s for s in self._subscriptions if s.client_id == target and s.batched
            ]
            if not subscriptions:
                # Documented QoS 0 behaviour: parked messages whose batched
                # subscription is gone are dropped, not kept — but the drop
                # is counted, never silent.
                dropped = self.drain_inbox(target)
                if dropped:
                    self._count_shed(target, len(dropped))
                continue
            for message in self.drain_inbox(target):
                handled = False
                topic_levels = message.topic.split("/")
                for subscription in subscriptions:
                    if match_levels(subscription.filter_levels, topic_levels):
                        # Every matching handler runs, mirroring immediate
                        # delivery with overlapping filters.
                        subscription.handler(message)
                        handled = True
                if handled:
                    flushed += 1
        return flushed

    # ------------------------------------------------------------------ #
    # QoS 1 acknowledgement
    # ------------------------------------------------------------------ #
    def acknowledge(self, client_id: str, message_id: int) -> None:
        """Acknowledge a QoS 1 delivery; unknown acks raise ``RoutingError``."""
        key = (client_id, message_id)
        if key not in self._pending_acks:
            raise RoutingError(f"no pending delivery for client={client_id} id={message_id}")
        del self._pending_acks[key]

    def unacknowledged(self, client_id: Optional[str] = None) -> List[Message]:
        """Messages delivered at QoS 1 that have not been acknowledged yet."""
        return [
            message
            for (owner, _), message in self._pending_acks.items()
            if client_id is None or owner == client_id
        ]

    def redeliver(self, client_id: str) -> int:
        """Redeliver all unacknowledged QoS 1 messages to *client_id*.

        Returns the number of messages redelivered.  Redelivery goes through
        the client's current subscriptions, so a client that unsubscribed
        receives nothing (and keeps the messages pending).
        """
        redelivered = 0
        for (owner, _), message in list(self._pending_acks.items()):
            if owner != client_id:
                continue
            for subscription in self._subscriptions:
                if subscription.client_id == client_id and topic_matches(
                    subscription.topic_filter, message.topic
                ):
                    subscription.handler(message)
                    redelivered += 1
                    break
        return redelivered

    # ------------------------------------------------------------------ #
    # Retained messages & statistics
    # ------------------------------------------------------------------ #
    def retained_message(self, topic: str) -> Optional[Message]:
        return self._retained.get(topic)

    def clear_retained(self, topic: Optional[str] = None) -> None:
        if topic is None:
            self._retained.clear()
        else:
            self._retained.pop(topic, None)

    @property
    def published_count(self) -> int:
        return self._published_count

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    @property
    def published_bytes(self) -> int:
        return self._published_bytes

    @property
    def shed_count(self) -> int:
        """Messages shed (bounded-inbox overflow, unsubscribe drops, gaps)."""
        return self._shed_messages

    @property
    def inbox_limit(self) -> Optional[int]:
        """Per-client inbox bound (messages); ``None`` means unbounded."""
        return self._inbox_limit

    def stats(self) -> Dict[str, object]:
        """Delivery/overload counters (folded into the client's health).

        ``shed_messages`` sums every counted loss: bounded-inbox overflow,
        inboxes dropped at unsubscribe, parked messages flushed after their
        subscription was removed, and messages published in a batched
        client's unsubscribe→re-subscribe gap.  ``inbox_depth`` is the
        total backlog currently parked across all inboxes.
        """
        return {
            "published": self._published_count,
            "delivered": self._delivered_count,
            "published_bytes": self._published_bytes,
            "shed_messages": self._shed_messages,
            "shed_by_client": dict(self._shed_by_client),
            "inbox_limit": self._inbox_limit,
            "inbox_depth": sum(len(inbox) for inbox in self._inboxes.values()),
            "gap_clients": sorted(self._gap_filters),
            "corrupted_messages": self._corrupted_count,
            "partitioned_clients": sorted(self._partitioned),
        }
