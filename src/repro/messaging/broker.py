"""The in-process MQTT-like broker.

Semantics implemented (the subset the F2C data plane relies on):

* **QoS 0** ("at most once") — the broker delivers the message to the
  subscribers registered at publish time and forgets it.
* **QoS 1** ("at least once") — the broker additionally keeps the message in
  a per-subscriber outbox until the subscriber acknowledges it, and can
  redeliver unacknowledged messages.
* **Retained messages** — the broker keeps the last retained message per
  topic and replays it to new subscribers whose filter matches.

Delivery is synchronous (the subscriber callback runs inside ``publish``),
which keeps the simulation deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, RoutingError
from repro.messaging.topics import topic_matches, validate_topic


@dataclass(frozen=True)
class Message:
    """A published message."""

    topic: str
    payload: bytes
    qos: int = 0
    retain: bool = False
    message_id: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.qos not in (0, 1):
            raise ConfigurationError(f"unsupported QoS level: {self.qos}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise ConfigurationError("payload must be bytes")

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


MessageHandler = Callable[[Message], None]


@dataclass
class _Subscription:
    client_id: str
    topic_filter: str
    handler: MessageHandler
    qos: int = 0


class Broker:
    """An in-process publish/subscribe broker with MQTT-like semantics."""

    def __init__(self, name: str = "broker") -> None:
        self.name = name
        self._subscriptions: List[_Subscription] = []
        self._retained: Dict[str, Message] = {}
        self._pending_acks: Dict[Tuple[str, int], Message] = {}
        self._message_ids = itertools.count(1)
        self._published_count = 0
        self._delivered_count = 0
        self._published_bytes = 0

    # ------------------------------------------------------------------ #
    # Subscription management
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        client_id: str,
        topic_filter: str,
        handler: MessageHandler,
        qos: int = 0,
    ) -> None:
        """Register *handler* for messages matching *topic_filter*.

        Retained messages matching the filter are replayed immediately.
        """
        validate_topic(topic_filter, allow_wildcards=True)
        if qos not in (0, 1):
            raise ConfigurationError(f"unsupported QoS level: {qos}")
        subscription = _Subscription(
            client_id=client_id, topic_filter=topic_filter, handler=handler, qos=qos
        )
        self._subscriptions.append(subscription)
        for topic, message in self._retained.items():
            if topic_matches(topic_filter, topic):
                self._deliver(subscription, message)

    def unsubscribe(self, client_id: str, topic_filter: Optional[str] = None) -> int:
        """Remove a client's subscriptions (all of them, or one filter)."""
        before = len(self._subscriptions)
        self._subscriptions = [
            s
            for s in self._subscriptions
            if not (s.client_id == client_id and (topic_filter is None or s.topic_filter == topic_filter))
        ]
        return before - len(self._subscriptions)

    def subscriptions_for(self, client_id: str) -> List[str]:
        return [s.topic_filter for s in self._subscriptions if s.client_id == client_id]

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        timestamp: float = 0.0,
    ) -> Message:
        """Publish *payload* on *topic* and deliver to matching subscribers."""
        validate_topic(topic, allow_wildcards=False)
        message = Message(
            topic=topic,
            payload=bytes(payload),
            qos=qos,
            retain=retain,
            message_id=next(self._message_ids),
            timestamp=timestamp,
        )
        self._published_count += 1
        self._published_bytes += message.size_bytes
        if retain:
            self._retained[topic] = message
        for subscription in list(self._subscriptions):
            if topic_matches(subscription.topic_filter, topic):
                self._deliver(subscription, message)
        return message

    def _deliver(self, subscription: _Subscription, message: Message) -> None:
        effective_qos = min(subscription.qos, message.qos)
        if effective_qos >= 1:
            self._pending_acks[(subscription.client_id, message.message_id)] = message
        subscription.handler(message)
        self._delivered_count += 1

    # ------------------------------------------------------------------ #
    # QoS 1 acknowledgement
    # ------------------------------------------------------------------ #
    def acknowledge(self, client_id: str, message_id: int) -> None:
        """Acknowledge a QoS 1 delivery; unknown acks raise ``RoutingError``."""
        key = (client_id, message_id)
        if key not in self._pending_acks:
            raise RoutingError(f"no pending delivery for client={client_id} id={message_id}")
        del self._pending_acks[key]

    def unacknowledged(self, client_id: Optional[str] = None) -> List[Message]:
        """Messages delivered at QoS 1 that have not been acknowledged yet."""
        return [
            message
            for (owner, _), message in self._pending_acks.items()
            if client_id is None or owner == client_id
        ]

    def redeliver(self, client_id: str) -> int:
        """Redeliver all unacknowledged QoS 1 messages to *client_id*.

        Returns the number of messages redelivered.  Redelivery goes through
        the client's current subscriptions, so a client that unsubscribed
        receives nothing (and keeps the messages pending).
        """
        redelivered = 0
        for (owner, _), message in list(self._pending_acks.items()):
            if owner != client_id:
                continue
            for subscription in self._subscriptions:
                if subscription.client_id == client_id and topic_matches(
                    subscription.topic_filter, message.topic
                ):
                    subscription.handler(message)
                    redelivered += 1
                    break
        return redelivered

    # ------------------------------------------------------------------ #
    # Retained messages & statistics
    # ------------------------------------------------------------------ #
    def retained_message(self, topic: str) -> Optional[Message]:
        return self._retained.get(topic)

    def clear_retained(self, topic: Optional[str] = None) -> None:
        if topic is None:
            self._retained.clear()
        else:
            self._retained.pop(topic, None)

    @property
    def published_count(self) -> int:
        return self._published_count

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    @property
    def published_bytes(self) -> int:
        return self._published_bytes
