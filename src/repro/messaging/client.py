"""A small client facade over the broker.

Components (sensor gateways, fog nodes) use a :class:`MessagingClient`
rather than talking to the broker directly: the client tracks its own
identity, buffers received messages, and offers convenience helpers for
publishing encoded sensor readings.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.messaging.broker import Broker, Message
from repro.sensors.readings import Reading


class MessagingClient:
    """A named participant on the broker."""

    def __init__(self, client_id: str, broker: Broker) -> None:
        self.client_id = client_id
        self.broker = broker
        self._inbox: List[Message] = []

    # ------------------------------------------------------------------ #
    # Subscribing
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        topic_filter: str,
        handler: Optional[Callable[[Message], None]] = None,
        qos: int = 0,
    ) -> None:
        """Subscribe to *topic_filter*.

        When *handler* is omitted, messages are appended to the client's
        inbox and can be drained with :meth:`drain_inbox`.
        """
        effective_handler = handler if handler is not None else self._inbox.append
        self.broker.subscribe(self.client_id, topic_filter, effective_handler, qos=qos)

    def unsubscribe(self, topic_filter: Optional[str] = None) -> int:
        return self.broker.unsubscribe(self.client_id, topic_filter)

    def drain_inbox(self) -> List[Message]:
        """Return and clear the buffered messages."""
        messages, self._inbox = self._inbox, []
        return messages

    @property
    def inbox_size(self) -> int:
        return len(self._inbox)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        topic: str,
        payload: bytes,
        qos: int = 0,
        retain: bool = False,
        timestamp: float = 0.0,
    ) -> Message:
        return self.broker.publish(topic, payload, qos=qos, retain=retain, timestamp=timestamp)

    def publish_reading(self, topic: str, reading: Reading, qos: int = 0) -> Message:
        """Publish a sensor reading using its wire encoding."""
        return self.publish(topic, reading.encode(), qos=qos, timestamp=reading.timestamp)

    def acknowledge(self, message: Message) -> None:
        self.broker.acknowledge(self.client_id, message.message_id)
