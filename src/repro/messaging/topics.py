"""MQTT-style topic names and filters.

Topic names are ``/``-separated paths such as
``city/bcn/district-03/section-21/energy/temperature``.  Filters may use the
standard MQTT wildcards: ``+`` matches exactly one level, ``#`` matches any
number of trailing levels and must be the last element of the filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError

SINGLE_LEVEL_WILDCARD = "+"
MULTI_LEVEL_WILDCARD = "#"


def validate_topic(topic: str, allow_wildcards: bool = False) -> None:
    """Validate a topic name (or filter, when *allow_wildcards* is true).

    Raises :class:`~repro.common.errors.ValidationError` on malformed input:
    empty topics, empty levels, embedded wildcards in publish topics, or a
    ``#`` that is not the final level.
    """
    if not topic:
        raise ValidationError("topic must be non-empty")
    levels = topic.split("/")
    for position, level in enumerate(levels):
        if level == "":
            raise ValidationError(f"topic has an empty level: {topic!r}")
        if not allow_wildcards and (SINGLE_LEVEL_WILDCARD in level or MULTI_LEVEL_WILDCARD in level):
            raise ValidationError(f"wildcards are not allowed in publish topics: {topic!r}")
        if allow_wildcards:
            if level == MULTI_LEVEL_WILDCARD and position != len(levels) - 1:
                raise ValidationError(f"'#' must be the last level: {topic!r}")
            if MULTI_LEVEL_WILDCARD in level and level != MULTI_LEVEL_WILDCARD:
                raise ValidationError(f"'#' cannot be part of a level name: {topic!r}")
            if SINGLE_LEVEL_WILDCARD in level and level != SINGLE_LEVEL_WILDCARD:
                raise ValidationError(f"'+' cannot be part of a level name: {topic!r}")


def topic_matches(filter_topic: str, topic: str) -> bool:
    """Return ``True`` when *topic* matches *filter_topic* (MQTT semantics)."""
    validate_topic(filter_topic, allow_wildcards=True)
    validate_topic(topic, allow_wildcards=False)
    return match_levels(filter_topic.split("/"), topic.split("/"))


def match_levels(filter_levels: list, topic_levels: list) -> bool:
    """Match pre-split, pre-validated filter levels against topic levels.

    The validation-free core of :func:`topic_matches`, for callers (like the
    broker's routing table) that validate once and match many times.
    """
    for index, filter_level in enumerate(filter_levels):
        if filter_level == MULTI_LEVEL_WILDCARD:
            return True
        if index >= len(topic_levels):
            return False
        if filter_level == SINGLE_LEVEL_WILDCARD:
            continue
        if filter_level != topic_levels[index]:
            return False
    return len(filter_levels) == len(topic_levels)


@dataclass(frozen=True)
class TopicFilter:
    """A validated, reusable topic filter."""

    pattern: str

    def __post_init__(self) -> None:
        validate_topic(self.pattern, allow_wildcards=True)

    def matches(self, topic: str) -> bool:
        return topic_matches(self.pattern, topic)


def sensor_topic(city: str, district: str, section: str, category: str, sensor_type: str) -> str:
    """Build the canonical topic for a sensor's readings.

    The hierarchy mirrors the city's administrative structure so that a fog
    layer-1 node subscribes to ``city/<city>/<district>/<section>/#`` and a
    fog layer-2 node to ``city/<city>/<district>/#``.
    """
    topic = f"city/{city}/{district}/{section}/{category}/{sensor_type}"
    validate_topic(topic)
    return topic
