"""Messaging substrate: an in-process MQTT-like publish/subscribe broker.

Sensor data in real fog deployments typically reaches the fog node over a
lightweight pub/sub protocol such as MQTT.  This environment has no network
access, so the package implements the protocol surface the rest of the
library needs — hierarchical topics with ``+``/``#`` wildcards, QoS 0/1
delivery semantics, retained messages, and per-client subscriptions — as an
in-process broker.  The acquisition block of the F2C architecture consumes
sensor readings through this interface, which keeps the code path identical
to a deployment backed by a real broker.
"""

from repro.messaging.broker import Broker, Message
from repro.messaging.client import MessagingClient
from repro.messaging.topics import TopicFilter, topic_matches, validate_topic

__all__ = [
    "Broker",
    "Message",
    "MessagingClient",
    "TopicFilter",
    "topic_matches",
    "validate_topic",
]
