"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e .``) in offline
environments whose setuptools predates PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
