"""The paper's headline experiment as an application.

Reproduces the Section V evaluation for the future smart city of Barcelona:
Table I (per-category daily traffic under the centralized cloud model vs the
F2C model with redundant-data elimination at fog layer 1) and the Fig. 7
series (raw / after aggregation / after compression), plus a scaled-down
event-level simulation that cross-checks the analytic estimate.

Run with::

    python examples/barcelona_f2c.py
"""

from __future__ import annotations

from repro import BARCELONA_CATALOG, ReadingGenerator, TrafficEstimator
from repro.api import connect
from repro.common.units import format_bytes
from repro.core.baseline import CentralizedCloudDataManagement
from repro.core.comparison import analytic_comparison, measured_comparison


def analytic_part() -> None:
    estimator = TrafficEstimator(BARCELONA_CATALOG)
    print("=" * 96)
    print("Table I — analytic estimate for the future Barcelona (1,005,019 sensors)")
    print("=" * 96)
    print(estimator.format_table1())

    print()
    print("Fig. 7 — per-category daily volume (raw -> after dedup -> after compression)")
    for category in BARCELONA_CATALOG.categories:
        print("  " + estimator.format_fig7(category))

    print()
    print(analytic_comparison(BARCELONA_CATALOG).format())


def simulated_part() -> None:
    print()
    print("=" * 96)
    print("Cross-check: event-level simulation on a sampled sensor population")
    print("=" * 96)
    catalog = BARCELONA_CATALOG.scaled(0.00005)
    generator = ReadingGenerator(catalog, devices_per_type=3, seed=11)

    f2c = connect(catalog=catalog)
    centralized = CentralizedCloudDataManagement(catalog=catalog)
    sections = [s.section_id for s in f2c.system.city.sections]

    for hour in range(6):  # six hours is enough to show the shape
        start = hour * 3600.0
        from repro.sensors.readings import ReadingBatch

        batch = ReadingBatch()
        for transaction in generator.transactions(count=4, start=start, interval=900.0):
            batch.extend(transaction)
        f2c.ingest(batch, now=start, default_section=sections[hour % len(sections)])
        centralized.ingest_readings(batch, now=start)
        f2c.synchronise(now=start + 3_599.0)

    comparison = measured_comparison(
        workload="six hours, sampled population",
        f2c_traffic_report=f2c.traffic_report(),
        centralized_traffic_report=centralized.traffic_report(),
    )
    print(comparison.format())
    print()
    print("Cloud archive datasets created:", len(f2c.system.cloud.archive.datasets()))
    print("Cloud archive volume:", format_bytes(f2c.system.cloud.archive.archived_bytes))


def main() -> None:
    analytic_part()
    simulated_part()


if __name__ == "__main__":
    main()
