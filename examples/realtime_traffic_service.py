"""A critical real-time service at the edge: traffic-incident detection.

Section IV.C's first class of consumers are "critical real-time services
executed at fog layer 1 in order to have a faster access to the (just
generated) real-time data".  This example places a traffic-incident detector
with a 50 ms latency bound, shows the placement engine choosing fog layer 1,
runs it against live readings, and contrasts the data-access latency with
what the same service would pay in the centralized architecture.

Run with::

    python examples/realtime_traffic_service.py
"""

from __future__ import annotations

from repro.api import connect
from repro.city.services import RealTimeService, ServiceRequirements
from repro.core.baseline import CentralizedCloudDataManagement
from repro.core.placement import ServicePlacementEngine
from repro.sensors.readings import Reading, ReadingBatch


def traffic_readings(section: str, count: int = 20) -> ReadingBatch:
    """Synthetic traffic-intensity readings with one incident spike."""
    readings = []
    for index in range(count):
        value = 60.0 + index if index != count - 1 else 450.0  # the incident
        readings.append(
            Reading(
                sensor_id=f"traffic-{section}-{index % 5}",
                sensor_type="traffic",
                category="urban",
                value=value,
                timestamp=float(index),
                size_bytes=44,
            )
        )
    return ReadingBatch(readings)


def main() -> None:
    client = connect()
    system = client.system
    section = system.city.sections[0].section_id
    engine = ServicePlacementEngine(system)

    service = RealTimeService(
        name="traffic-incident-detection",
        category="urban",
        threshold=300.0,
        requirements=ServiceRequirements(
            latency_bound_s=0.050, data_window_s=300.0, compute_units=2.0, data_scope="section"
        ),
    )

    decision = engine.place(service.name, service.requirements, home_section=section)
    print(f"Placement decision: run {service.name!r} on {decision.node_id} ({decision.layer.value})")
    print(f"  estimated data-access latency: {decision.estimated_access_latency_s * 1e3:.3f} ms")
    print(f"  reason: {decision.reason}")

    # Ingest live readings; the query service serves them from the local
    # fog node — the nearest tier — which is the whole point of the
    # placement decision above.
    batch = traffic_readings(section)
    client.ingest(batch, now=20.0, default_section=section)
    result = client.query(section_id=section, category="urban")
    assert result.tiers() == ("fog_layer_1",)
    window = result.batch()

    alerts = service.evaluate(list(window), access_latency_s=decision.estimated_access_latency_s)
    print(f"\nEvaluated {len(window)} readings, {len(alerts)} incident(s) detected:")
    for alert in alerts:
        print(f"  sensor {alert.sensor_id} reported intensity {alert.value}")
    print(f"Latency bound respected: {service.meets_latency_bound()}")

    # What the same service would pay in the centralized architecture.
    centralized = CentralizedCloudDataManagement()
    centralized.ingest_readings(batch, now=20.0)
    centralized_latency = centralized.end_to_end_realtime_latency(reading_bytes=44, response_bytes=4_096)
    print("\nCentralized alternative:")
    print(f"  upload + read-back latency: {centralized_latency * 1e3:.2f} ms")
    print(
        "  the F2C placement serves the same data locally "
        f"({decision.estimated_access_latency_s * 1e3:.3f} ms) — "
        f"{centralized_latency / max(decision.estimated_access_latency_s, 1e-6):,.0f}x faster"
    )


if __name__ == "__main__":
    main()
