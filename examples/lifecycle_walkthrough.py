"""SCC-DLC walkthrough: a batch of readings through every life-cycle phase.

Follows Section II / Fig. 2: the acquisition block (collection → filtering →
quality → description), the processing block (process → analysis) and the
preservation block (classification → archive → dissemination), printing what
each phase did to the data — including the readings each phase removed and
the tags it attached.

Run with::

    python examples/lifecycle_walkthrough.py
"""

from __future__ import annotations

from repro.aggregation.pipeline import AggregationPipeline
from repro.aggregation.redundancy import RedundantDataElimination
from repro.dlc.acquisition import AcquisitionBlock, DataFilteringPhase, DataQualityPhase
from repro.dlc.model import DataLifeCycle
from repro.dlc.preservation import PreservationBlock
from repro.dlc.processing import ProcessingBlock
from repro.sensors.catalog import BARCELONA_CATALOG
from repro.sensors.readings import Reading, ReadingBatch
from repro.storage.archive import AccessLevel, DisseminationPolicy


def build_input_batch() -> ReadingBatch:
    """A deliberately messy batch: duplicates, an implausible value, a text value."""
    readings = [
        Reading("temp-001", "temperature", "energy", 21.5, timestamp=10.0, size_bytes=22),
        Reading("temp-001", "temperature", "energy", 21.5, timestamp=25.0, size_bytes=22),  # duplicate
        Reading("temp-002", "temperature", "energy", 22.0, timestamp=12.0, size_bytes=22),
        Reading("temp-003", "temperature", "energy", 9_999.0, timestamp=14.0, size_bytes=22),  # absurd
        Reading("noise-001", "noise_level_basic", "noise", 62.0, timestamp=15.0, size_bytes=22),
        Reading("noise-001", "noise_level_basic", "noise", "offline", timestamp=16.0, size_bytes=22),
        Reading("traffic-001", "traffic", "urban", 140.0, timestamp=18.0, size_bytes=44),
    ]
    return ReadingBatch(readings)


def main() -> None:
    batch = build_input_batch()
    print(f"Input: {len(batch)} readings, {batch.total_bytes} bytes\n")

    acquisition = AcquisitionBlock(
        filtering=DataFilteringPhase(
            aggregator=AggregationPipeline([RedundantDataElimination(scope="batch")])
        ),
        quality=DataQualityPhase(catalog=BARCELONA_CATALOG),
    )
    processing = ProcessingBlock()
    preservation = PreservationBlock(
        policy=DisseminationPolicy(access_level=AccessLevel.PUBLIC, anonymize=False)
    )
    lifecycle = DataLifeCycle(acquisition=acquisition, processing=processing, preservation=preservation)

    results = lifecycle.run(batch, now=30.0)

    for block_name, block_result in results.items():
        print(f"== {block_name} ==")
        for phase in block_result.phase_results:
            line = (
                f"  {phase.phase_name:<20} {phase.input_readings:>3} -> {phase.output_readings:>3} readings"
                f"   {phase.input_bytes:>5} -> {phase.output_bytes:>5} bytes"
            )
            if phase.details:
                interesting = {
                    key: value
                    for key, value in phase.details.items()
                    if key in ("technique", "rejected", "rejection_reasons", "datasets", "anomalies")
                    and value
                }
                if interesting:
                    line += f"   {interesting}"
            print(line)
        print(f"  block reduction: {block_result.total_reduction_ratio:.1%}\n")

    print("Analysis extracted by the processing block:")
    for category, stats in processing.analysis.last_analysis.items():
        print(
            f"  {category:<8} count={stats['count']:.0f} mean={stats['mean']:.2f} "
            f"min={stats['min']:.1f} max={stats['max']:.1f}"
        )

    print("\nDatasets preserved at the cloud (open-data view):")
    archive = preservation.archive
    for dataset in archive.datasets():
        entry = archive.latest(dataset)
        print(
            f"  {dataset:<22} version {entry.version}, {entry.reading_count} readings, "
            f"access={entry.policy.access_level.value}"
        )
    # Anyone can read public datasets back through the dissemination interface.
    first = archive.datasets()[0]
    recovered = archive.read(first, consumer="open-data-portal")
    print(f"\nRead back {len(recovered)} readings from {first!r} through the dissemination interface.")


if __name__ == "__main__":
    main()
