"""Comparing aggregation techniques on the same fog layer-1 stream.

The paper evaluates two basic techniques (redundant-data elimination and
compression) and points at richer families (decomposable functions,
sketches).  This example runs them all — individually and stacked — on one
day of synthetic readings from a single fog node and reports the bytes that
would cross the backhaul under each, along with what information each
technique preserves.

Run with::

    python examples/aggregation_comparison.py
"""

from __future__ import annotations

from repro.aggregation.averaging import WindowAveraging
from repro.aggregation.base import NoOpAggregation
from repro.aggregation.compression import CalibratedCompression, DeflateCompression
from repro.aggregation.pipeline import AggregationPipeline
from repro.aggregation.redundancy import RedundantDataElimination
from repro.aggregation.sketches import SketchSummaryAggregation
from repro.common.units import format_bytes
from repro.sensors.catalog import BARCELONA_CATALOG, SensorCategory
from repro.sensors.generator import ReadingGenerator


def build_day_batch():
    catalog = BARCELONA_CATALOG.subset([SensorCategory.ENERGY, SensorCategory.URBAN]).scaled(0.0001)
    generator = ReadingGenerator(catalog, devices_per_type=4, seed=5)
    return generator.day_batch()


def main() -> None:
    batch = build_day_batch()
    print(
        f"One day of readings from one fog node's sampled sensors: "
        f"{len(batch):,} readings, {format_bytes(batch.total_bytes)}\n"
    )

    techniques = {
        "no aggregation (centralized baseline)": NoOpAggregation(),
        "redundant-data elimination (consecutive)": RedundantDataElimination(scope="consecutive"),
        "redundant-data elimination (batch-wide)": RedundantDataElimination(scope="batch"),
        "DEFLATE compression only": DeflateCompression(level=6),
        "window averaging (30 min)": WindowAveraging(window_seconds=1_800.0),
        "sketch summary (count-min + distinct)": SketchSummaryAggregation(),
        "dedup + compression (the paper's pipeline)": AggregationPipeline(
            [RedundantDataElimination(scope="consecutive"), DeflateCompression(level=6)]
        ),
        "dedup + averaging + calibrated zip": AggregationPipeline(
            [
                RedundantDataElimination(scope="consecutive"),
                WindowAveraging(window_seconds=1_800.0),
                CalibratedCompression(),
            ]
        ),
    }

    lossless = {
        "no aggregation (centralized baseline)",
        "DEFLATE compression only",
    }

    print(f"{'technique':<44} {'backhaul bytes':>16} {'reduction':>10}   information kept")
    print("-" * 110)
    for name, technique in techniques.items():
        result = technique.apply(batch)
        if name in lossless:
            kept = "every reading (lossless)"
        elif "elimination" in name or "dedup" in name:
            kept = "every distinct observation"
        elif "averaging" in name:
            kept = "per-sensor window means"
        elif "sketch" in name:
            kept = "frequency / distinct-count estimates"
        else:
            kept = "depends on pipeline stages"
        print(
            f"{name:<44} {result.output_bytes:>16,} {result.reduction_ratio:>9.1%}   {kept}"
        )

    print(
        "\nThe paper's choice (dedup then compression) keeps every distinct observation while "
        "removing most of the backhaul volume; averaging and sketches go further when consumers "
        "only need summaries."
    )


if __name__ == "__main__":
    main()
