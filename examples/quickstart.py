"""Quickstart: a small F2C deployment end to end, through ``repro.api``.

Builds the Barcelona F2C hierarchy (73 fog layer-1 nodes, 10 fog layer-2
nodes, one cloud) behind the unified client, streams a few rounds of
synthetic sensor readings into one section, lets the acquisition block
filter them, moves data upwards, and answers hierarchical queries from the
nearest tier that holds the window.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BARCELONA_CATALOG, ReadingGenerator
from repro.api import connect
from repro.common.units import format_bytes
from repro.sensors.readings import ReadingBatch


def main() -> None:
    # 1. Deploy the F2C data-management system for Barcelona behind the
    #    unified client: one object for ingest, queries and health.
    client = connect()
    system = client.system
    print("Deployment:", system.summary())

    # 2. A sampled sensor population (the real catalog has ~1M devices; five
    #    devices per type is plenty for a demo).
    catalog = BARCELONA_CATALOG.scaled(0.0001)
    generator = ReadingGenerator(catalog, devices_per_type=5, seed=7)
    section = system.city.sections[0].section_id
    print(f"\nStreaming one hour of readings (4 transactions) into section {section!r} ...")

    # The fog node accumulates an hour of readings before its upward sync, so
    # the acquisition block sees repeated measurements and can deduplicate them.
    hour = ReadingBatch()
    for transaction in generator.transactions(count=4, start=0.0, interval=900.0):
        hour.extend(transaction)
    client.ingest(hour, now=2_700.0, default_section=section)

    # 3. Real-time data is available immediately — and the query service
    #    serves it from the section's own fog layer-1 node (the nearest
    #    tier), with per-tier attribution.
    realtime = client.query(since=0.0, until=3_600.0, section_id=section)
    print(
        f"Real-time window: {len(realtime)} readings served from "
        f"{', '.join(realtime.tiers())} ({realtime.rows_by_tier})"
    )
    sample_sensor = realtime.columns.sensor_ids[0]
    latest = system.fog1_for_section(section).latest(sample_sensor)
    print(f"Latest from {sample_sensor}: {latest.value}")

    # 4. Move data upwards (fog L1 -> fog L2 -> cloud) as the scheduler would.
    moved = client.synchronise(now=3_600.0)
    print("\nUpward movement:", {hop: sum(v.values()) for hop, v in moved.items()})

    # 5. The cloud preserved everything that moved up, with lineage.
    cloud = system.cloud
    print(f"Cloud archive datasets: {cloud.archive.datasets()}")

    # 6. The traffic accountant shows the per-layer byte volumes — the
    #    quantity the paper's evaluation is about.
    report = client.traffic_report()
    print("\nBytes received per layer:")
    for layer, size in report.items():
        print(f"  {layer:<12} {format_bytes(size)}")
    reduction = 1 - report["cloud"] / report["fog_layer_1"] if report["fog_layer_1"] else 0.0
    print(f"\nBackhaul reduction from aggregation at fog layer 1: {reduction:.1%}")

    # 7. One health report covers every drop/fault counter in the system.
    print("\nHealth:", client.health())


if __name__ == "__main__":
    main()
